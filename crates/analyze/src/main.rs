//! CLI entry point. See `--help` (printed on bad usage) and the crate
//! docs in `lib.rs`.

use std::path::PathBuf;
use std::process::ExitCode;

use bitrobust_analyze::{analyze_workspace, baseline, find_workspace_root, rules};

const USAGE: &str = "\
bitrobust-analyze: repo-specific determinism & unsafety lints

USAGE:
    cargo run -p bitrobust-analyze -- [OPTIONS]

OPTIONS:
    --deny             exit non-zero on any non-baselined violation (CI mode)
    --root <DIR>       workspace root (default: walk up from cwd)
    --baseline <FILE>  baseline file (default: <root>/ANALYZE_baseline.txt)
    --json <FILE>      also write the machine-readable report there
    --print-baseline   print baseline lines grandfathering every fresh
                       finding (fill in the reason column before committing)
    --list-rules       print the rule catalogue and exit
";

struct Args {
    deny: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    print_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        root: None,
        baseline: None,
        json: None,
        print_baseline: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--print-baseline" => args.print_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--root" => args.root = Some(next_path(&mut it, "--root")?),
            "--baseline" => args.baseline = Some(next_path(&mut it, "--baseline")?),
            "--json" => args.json = Some(next_path(&mut it, "--json")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next().map(PathBuf::from).ok_or_else(|| format!("{flag} requires a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{:<22} {}", r.id, r.doc.split_whitespace().collect::<Vec<_>>().join(" "));
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().expect("cwd");
    let Some(root) = args.root.or_else(|| find_workspace_root(&cwd)) else {
        eprintln!("error: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };

    let baseline_path = args.baseline.unwrap_or_else(|| root.join("ANALYZE_baseline.txt"));
    let (entries, errors) = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(_) => (Vec::new(), Vec::new()), // no baseline file: strict from scratch
    };

    let report = match analyze_workspace(&root, &entries, errors) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());

    if args.print_baseline && !report.fresh.is_empty() {
        println!("\n# baseline lines for the findings above (document each reason!):");
        for f in &report.fresh {
            println!("{}", baseline::format_entry(f, "TODO: justify or fix"));
        }
    }

    if let Some(json_path) = args.json {
        if let Err(e) = std::fs::write(&json_path, report.render_json()) {
            eprintln!("error: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    if args.deny && report.violations() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
