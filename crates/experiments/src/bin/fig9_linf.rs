//! **Fig. 9** — Weight clipping also buys robustness against relative
//! `L∞` weight noise (which, unlike bit errors, perturbs *every* weight).

use bitrobust_biterror::hash_unit;
use bitrobust_core::{evaluate, TrainMethod, EVAL_BATCH};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{dataset_pair, pct, zoo_model, DatasetKind, ExpOptions, Table};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let magnitudes = [0.0, 0.05, 0.10, 0.20, 0.30];
    let n_draws = opts.chips.min(10);

    let configs: Vec<(&str, TrainMethod)> = vec![
        ("RQUANT (no clipping)", TrainMethod::Normal),
        ("CLIPPING 0.15", TrainMethod::Clipping { wmax: 0.15 }),
        ("CLIPPING 0.1", TrainMethod::Clipping { wmax: 0.1 }),
        ("CLIPPING 0.05", TrainMethod::Clipping { wmax: 0.05 }),
    ];

    let mut header = vec!["model".to_string()];
    header.extend(magnitudes.iter().map(|m| format!("L-inf {:.0}%", 100.0 * m)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (name, method) in configs {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (mut model, _) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let mut row = vec![name.to_string()];
        for &mag in &magnitudes {
            let mut sum = 0f64;
            for draw in 0..n_draws {
                sum += linf_error(&mut model, &test_ds, mag, draw as u64) as f64;
            }
            row.push(pct(sum / n_draws as f64));
        }
        table.row_owned(row);
    }
    println!(
        "Fig. 9 — RErr under relative L-inf weight noise (CIFAR10 stand-in):\n{}",
        table.render()
    );
    println!("Expected shape (paper): clipping improves robustness here too; note L-inf noise");
    println!("affects all weights, unlike sparse random bit errors.");
}

/// Adds per-tensor uniform noise of magnitude `mag * max|w|`, evaluates,
/// restores.
fn linf_error(model: &mut Model, test_ds: &bitrobust_data::Dataset, mag: f32, draw: u64) -> f32 {
    let snapshot = model.param_tensors();
    let mut tensor_idx = 0u64;
    model.visit_params(&mut |p| {
        let eps = mag * p.value().abs_max();
        let mut i = 0u64;
        p.value_mut().map_inplace(|v| {
            let u = hash_unit(draw ^ (tensor_idx << 32), i, 0) as f32;
            i += 1;
            v + eps * (2.0 * u - 1.0)
        });
        tensor_idx += 1;
    });
    let result = evaluate(model, test_ds, EVAL_BATCH, Mode::Eval);
    model.set_param_tensors(&snapshot);
    result.error
}
