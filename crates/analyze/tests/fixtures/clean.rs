// Fixture: the negative control — every pattern here is the *approved*
// counterpart of a violation in the sibling fixtures, so it must produce
// zero findings when scanned as `crates/nn/src/quantized.rs` (numeric
// crate AND quantization boundary, the strictest combination).

use std::collections::BTreeMap;

/// Sound wrapper around a raw write.
///
/// # Safety
///
/// `p` must be valid for writes and properly aligned.
pub unsafe fn write_checked(p: *mut f32) {
    // SAFETY: caller contract (see `# Safety`) guarantees validity.
    unsafe { *p = 1.0 };
}

pub fn deterministic(xs: &[f32], q: i8) -> f32 {
    let mut seen: BTreeMap<usize, f32> = BTreeMap::new();
    assert!(!xs.is_empty(), "survives release builds");
    for (i, &x) in xs.iter().enumerate() {
        seen.insert(i, x);
    }
    let widened = f32::from(q) * f32::from(i16::from(q));
    seen.values().sum::<f32>() + widened
}

#[deprecated(note = "use `deterministic` instead")]
pub fn documented_deprecation() {}
