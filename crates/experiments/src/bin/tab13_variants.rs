//! **Tab. 13** — RandBET variants.
//!
//! Standard RandBET (Alg. 1) vs the curricular schedule (ramping the
//! training bit error rate) and the alternating two-update scheme. The
//! paper finds both variants slightly *worse* than the standard recipe.

use bitrobust_core::{RandBetVariant, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, rerr_sweep, zoo_model, DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let ps = [1e-3, 1e-2];

    let mut header = vec!["model".to_string(), "Err %".to_string()];
    header.extend(ps.iter().map(|p| format!("RErr p={:.1}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (name, variant) in [
        ("RANDBET p=1% (standard)", RandBetVariant::Standard),
        ("Curricular RANDBET p=1%", RandBetVariant::Curricular),
        ("Alternating RANDBET p=1%", RandBetVariant::Alternating),
    ] {
        let mut spec = ZooSpec::new(
            DatasetKind::Cifar10,
            Some(scheme),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant },
        );
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let sweep = rerr_sweep(&model, scheme, &test_ds, &ps, opts.chips);
        let mut row = vec![name.to_string(), pct(report.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!("Tab. 13 (CIFAR10 stand-in, m = 8 bit, wmax = 0.1):\n{}", table.render());
    println!("Expected shape (paper): both variants perform slightly worse than standard RANDBET.");
}
