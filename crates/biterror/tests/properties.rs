//! Property-based tests of the bit error models.

use bitrobust_biterror::{ErrorInjector, UniformChip};
use proptest::prelude::*;

proptest! {
    /// The paper's persistence axiom: flips at rate p' <= p are a subset of
    /// flips at rate p, for any chip and any pair of rates.
    #[test]
    fn flips_are_nested_across_rates(seed in any::<u64>(), p1 in 0.0f64..0.5, p2 in 0.0f64..0.5) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let chip = UniformChip::new(seed);
        for wi in 0..200usize {
            for bit in 0..8u8 {
                if chip.flips(lo, wi, bit) {
                    prop_assert!(chip.flips(hi, wi, bit));
                }
            }
        }
    }

    /// Injection is an involution: applying the same pattern twice restores
    /// the original words.
    #[test]
    fn double_injection_restores(seed in any::<u64>(), p in 0.0f64..0.3,
                                 words in prop::collection::vec(any::<u8>(), 1..256)) {
        let orig: Vec<u8> = words.iter().map(|w| w & 0x0F).collect(); // 4-bit live
        let mut buf = orig.clone();
        let inj = UniformChip::new(seed).at_rate(p);
        inj.inject(&mut buf, 4, 0);
        inj.inject(&mut buf, 4, 0);
        prop_assert_eq!(buf, orig);
    }

    /// Injection never touches bits above the precision.
    #[test]
    fn dead_bits_untouched(seed in any::<u64>(), bits in 2u8..8) {
        let mask = (1u8 << bits) - 1;
        let mut words = vec![0u8; 2048];
        UniformChip::new(seed).at_rate(0.5).inject(&mut words, bits, 0);
        prop_assert!(words.iter().all(|&w| w & !mask == 0));
    }

    /// The empirical flip rate concentrates around p (law of large numbers;
    /// 5-sigma tolerance keeps this deterministic in practice).
    #[test]
    fn flip_rate_concentrates(seed in any::<u64>(), p in 0.01f64..0.3) {
        let n_words = 8192usize;
        let mut words = vec![0u8; n_words];
        UniformChip::new(seed).at_rate(p).inject(&mut words, 8, 0);
        let flips: u32 = words.iter().map(|w| w.count_ones()).sum();
        let n_bits = (n_words * 8) as f64;
        let expected = p * n_bits;
        let sigma = (n_bits * p * (1.0 - p)).sqrt();
        prop_assert!((flips as f64 - expected).abs() < 5.0 * sigma + 1.0,
            "{} flips vs {} expected", flips, expected);
    }

    /// The word offset behaves like a linear memory mapping: injecting a
    /// window at offset k equals the corresponding window of a full-buffer
    /// injection.
    #[test]
    fn offset_windows_are_consistent(seed in any::<u64>(), offset in 0usize..512) {
        let chip = UniformChip::new(seed);
        let mut full = vec![0u8; 1024];
        chip.at_rate(0.1).inject(&mut full, 8, 0);
        let mut window = vec![0u8; 256];
        chip.at_rate(0.1).inject(&mut window, 8, offset);
        prop_assert_eq!(&window[..], &full[offset..offset + 256]);
    }
}
