//! Softmax cross-entropy with optional label smoothing.

use bitrobust_tensor::{softmax_rows, Tensor};

/// Softmax cross-entropy loss.
///
/// With `smoothing_target = Some(tau)` the target distribution puts `tau` on
/// the true class and `(1 - tau)/(C - 1)` on each other class — the exact
/// label-smoothing variant the paper uses (τ = 0.9) to show that removing
/// the pressure for high confidences also removes the robustness benefit of
/// weight clipping (Tab. 2).
///
/// # Examples
///
/// ```
/// use bitrobust_nn::CrossEntropyLoss;
/// use bitrobust_tensor::Tensor;
///
/// let loss = CrossEntropyLoss::new();
/// let logits = Tensor::from_vec(vec![1, 3], vec![10.0, 0.0, 0.0]);
/// let out = loss.compute(&logits, &[0]);
/// assert!(out.loss < 1e-3); // confidently correct
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss {
    smoothing_target: Option<f32>,
}

/// The results of a loss evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Loss normalized by the denominator passed to
    /// [`CrossEntropyLoss::compute_scaled`] — the batch mean for
    /// [`CrossEntropyLoss::compute`].
    pub loss: f32,
    /// Unnormalized sum of per-example losses (f64, so data-parallel
    /// shards can be reduced without losing the bits of the batch mean).
    pub loss_sum: f64,
    /// Gradient of the normalized loss w.r.t. the logits, `[batch, classes]`.
    pub grad: Tensor,
    /// Softmax probabilities, `[batch, classes]`.
    pub probs: Tensor,
}

impl CrossEntropyLoss {
    /// Standard cross-entropy against one-hot targets.
    pub fn new() -> Self {
        Self { smoothing_target: None }
    }

    /// Cross-entropy against label-smoothed targets.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tau <= 1`.
    pub fn with_label_smoothing(tau: f32) -> Self {
        assert!(tau > 0.0 && tau <= 1.0, "smoothing target must be in (0, 1]");
        Self { smoothing_target: Some(tau) }
    }

    /// The smoothing target, if label smoothing is enabled.
    pub fn smoothing_target(&self) -> Option<f32> {
        self.smoothing_target
    }

    /// Computes the batch-mean loss, logits gradient, and probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not 2-D, `labels.len()` differs from the batch
    /// size, or a label is out of range.
    pub fn compute(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        self.compute_scaled(logits, labels, logits.dim(0))
    }

    /// [`CrossEntropyLoss::compute`] with an explicit normalization
    /// denominator: loss and gradient are divided by `denom` instead of the
    /// number of rows in `logits`.
    ///
    /// This is the shard-side primitive of data-parallel training: each
    /// worker evaluates its slice of the mini-batch with `denom` set to the
    /// *full* batch size, so the per-shard gradients are already scaled by
    /// `1/B` and sum — in a fixed reduction order — to the gradient of the
    /// batch-mean loss. With `denom == logits.dim(0)` this is exactly
    /// [`CrossEntropyLoss::compute`], bit for bit.
    ///
    /// # Panics
    ///
    /// As [`CrossEntropyLoss::compute`], and if `denom == 0`.
    pub fn compute_scaled(&self, logits: &Tensor, labels: &[usize], denom: usize) -> LossOutput {
        assert_eq!(logits.ndim(), 2, "logits must be [batch, classes]");
        let (batch, classes) = (logits.dim(0), logits.dim(1));
        assert_eq!(labels.len(), batch, "labels/batch size mismatch");
        assert!(classes >= 2, "need at least two classes");
        assert!(denom > 0, "loss denominator must be positive");

        let probs = softmax_rows(logits);
        let (target_true, target_other) = match self.smoothing_target {
            Some(tau) => (tau, (1.0 - tau) / (classes as f32 - 1.0)),
            None => (1.0, 0.0),
        };

        let mut grad = probs.clone();
        let mut loss = 0.0f64;
        let inv_denom = 1.0 / denom as f32;
        {
            let g = grad.data_mut();
            let p = probs.data();
            for (b, &label) in labels.iter().enumerate() {
                assert!(label < classes, "label {label} out of range for {classes} classes");
                for c in 0..classes {
                    let t = if c == label { target_true } else { target_other };
                    let idx = b * classes + c;
                    if t > 0.0 {
                        loss -= t as f64 * (p[idx].max(1e-12) as f64).ln();
                    }
                    g[idx] = (p[idx] - t) * inv_denom;
                }
            }
        }
        LossOutput { loss: (loss / denom as f64) as f32, loss_sum: loss, grad, probs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::zeros(&[4, 10]);
        let out = loss.compute(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let loss = CrossEntropyLoss::new();
        let mut logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let out = loss.compute(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let orig = logits.data()[i];
            logits.data_mut()[i] = orig + eps;
            let plus = loss.compute(&logits, &labels).loss;
            logits.data_mut()[i] = orig - eps;
            let minus = loss.compute(&logits, &labels).loss;
            logits.data_mut()[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (out.grad.data()[i] - numeric).abs() < 1e-3,
                "coord {i}: {} vs {numeric}",
                out.grad.data()[i]
            );
        }
    }

    #[test]
    fn smoothing_gradient_matches_finite_differences() {
        let loss = CrossEntropyLoss::with_label_smoothing(0.9);
        let mut logits = Tensor::from_vec(vec![1, 4], vec![2.0, -1.0, 0.5, 0.0]);
        let labels = [1usize];
        let out = loss.compute(&logits, &labels);
        let eps = 1e-3;
        for i in 0..4 {
            let orig = logits.data()[i];
            logits.data_mut()[i] = orig + eps;
            let plus = loss.compute(&logits, &labels).loss;
            logits.data_mut()[i] = orig - eps;
            let minus = loss.compute(&logits, &labels).loss;
            logits.data_mut()[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((out.grad.data()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn smoothing_penalizes_extreme_confidence() {
        let smooth = CrossEntropyLoss::with_label_smoothing(0.9);
        let confident = Tensor::from_vec(vec![1, 2], vec![50.0, -50.0]);
        let moderate = Tensor::from_vec(vec![1, 2], vec![2.2, 0.0]); // p ~ 0.9
        assert!(smooth.compute(&confident, &[0]).loss > smooth.compute(&moderate, &[0]).loss);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn rejects_out_of_range_labels() {
        let loss = CrossEntropyLoss::new();
        let _ = loss.compute(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    fn compute_scaled_with_batch_denominator_matches_compute() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(
            vec![3, 4],
            vec![0.5, -0.2, 0.1, 2.0, 1.0, 0.0, -1.0, 0.3, 0.2, 0.7, -0.4, 0.0],
        );
        let labels = [2usize, 0, 3];
        let a = loss.compute(&logits, &labels);
        let b = loss.compute_scaled(&logits, &labels, 3);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        assert_eq!(a.loss_sum.to_bits(), b.loss_sum.to_bits());
        assert_eq!(a.grad, b.grad);
    }

    #[test]
    fn sharded_loss_sums_recover_the_batch_mean() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![4, 2], vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9]);
        let labels = [0usize, 0, 1, 1];
        let whole = loss.compute(&logits, &labels);

        // Split into two shards, each normalized by the full batch size.
        let top = Tensor::from_vec(vec![3, 2], logits.data()[..6].to_vec());
        let bottom = Tensor::from_vec(vec![1, 2], logits.data()[6..].to_vec());
        let a = loss.compute_scaled(&top, &labels[..3], 4);
        let b = loss.compute_scaled(&bottom, &labels[3..], 4);
        let mean = ((a.loss_sum + b.loss_sum) / 4.0) as f32;
        assert!((mean - whole.loss).abs() < 1e-6);
        // Shard gradients concatenate to the batch-mean gradient.
        let merged: Vec<f32> = a.grad.data().iter().chain(b.grad.data()).copied().collect();
        for (m, w) in merged.iter().zip(whole.grad.data()) {
            assert!((m - w).abs() < 1e-7);
        }
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn compute_scaled_rejects_zero_denominator() {
        let loss = CrossEntropyLoss::new();
        let _ = loss.compute_scaled(&Tensor::zeros(&[1, 3]), &[0], 0);
    }
}
