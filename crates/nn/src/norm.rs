//! Normalization layers.
//!
//! The paper replaces BatchNorm with GroupNorm because BatchNorm's
//! *accumulated* statistics do not account for weight bit errors at test
//! time (Tab. 10, App. G.1). Both are provided here, and [`BatchNorm2d`]
//! supports evaluating with batch statistics ([`Mode::EvalBatchStats`]) to
//! reproduce that ablation.
//!
//! Both layers use the App. E reparameterization: the learnable scale is
//! stored as `alpha' = alpha - 1`, so aggressive weight clipping to
//! `[-wmax, wmax]` with `wmax < 1` does not prevent the layer from
//! representing the identity (`alpha = 1` corresponds to `alpha' = 0`).

use bitrobust_tensor::Tensor;

use crate::{Layer, Mode, Param, ParamKind};

const EPS: f32 = 1e-5;

/// Group normalization (Wu & He, 2018) over `[batch, ch, h, w]`.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::{GroupNorm, Layer, Mode};
/// use bitrobust_tensor::Tensor;
///
/// let mut gn = GroupNorm::new(8, 4);
/// let x = Tensor::from_fn(&[2, 8, 3, 3], |i| i as f32);
/// let y = gn.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 8, 3, 3]);
/// ```
#[derive(Debug)]
pub struct GroupNorm {
    scale: Param, // alpha' = alpha - 1
    shift: Param,
    groups: usize,
    normalized_cache: Option<Tensor>,
    inv_std_cache: Vec<f32>, // [batch * groups]
}

impl GroupNorm {
    /// Creates a group-norm layer with identity initialization.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `channels`.
    pub fn new(channels: usize, groups: usize) -> Self {
        assert!(groups > 0 && channels.is_multiple_of(groups), "groups must divide channels");
        Self {
            scale: Param::new("scale", ParamKind::NormScale, Tensor::zeros(&[channels])),
            shift: Param::new("shift", ParamKind::NormBias, Tensor::zeros(&[channels])),
            groups,
            normalized_cache: None,
            inv_std_cache: Vec::new(),
        }
    }

    /// Number of channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Per-group normalization pass shared by `forward` and `infer`.
    fn normalize(&self, input: &Tensor) -> (Tensor, Vec<f32>) {
        assert_eq!(input.ndim(), 4, "GroupNorm expects [batch, ch, h, w]");
        let (batch, ch, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        assert_eq!(ch, self.scale.numel(), "GroupNorm channel mismatch");
        let group_ch = ch / self.groups;
        let group_len = group_ch * h * w;

        // Normalization is a single cheap pass relative to the surrounding
        // convolutions, so it stays serial and simple.
        let mut normalized = input.clone();
        let mut inv_stds = vec![0f32; batch * self.groups];
        let x = input.data();
        let data = normalized.data_mut();
        for b in 0..batch {
            for g in 0..self.groups {
                let start = b * ch * h * w + g * group_len;
                let chunk = &x[start..start + group_len];
                let mean = chunk.iter().sum::<f32>() / group_len as f32;
                let var =
                    chunk.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / group_len as f32;
                let inv_std = 1.0 / (var + EPS).sqrt();
                inv_stds[b * self.groups + g] = inv_std;
                for (o, &v) in data[start..start + group_len].iter_mut().zip(chunk) {
                    *o = (v - mean) * inv_std;
                }
            }
        }
        (normalized, inv_stds)
    }

    /// Applies the reparameterized scale/shift to a normalized tensor.
    fn scale_shift(&self, normalized: &Tensor) -> Tensor {
        let (batch, ch, h, w) =
            (normalized.dim(0), normalized.dim(1), normalized.dim(2), normalized.dim(3));
        let mut out = normalized.clone();
        let scale = self.scale.value().data();
        let shift = self.shift.value().data();
        let out_data = out.data_mut();
        for b in 0..batch {
            for c in 0..ch {
                let gamma = 1.0 + scale[c];
                let beta = shift[c];
                let start = (b * ch + c) * h * w;
                for v in &mut out_data[start..start + h * w] {
                    *v = gamma * *v + beta;
                }
            }
        }
        out
    }
}

impl Layer for GroupNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (normalized, inv_stds) = self.normalize(input);
        let out = self.scale_shift(&normalized);
        if mode.is_train() {
            self.normalized_cache = Some(normalized);
            self.inv_std_cache = inv_stds;
        }
        out
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        let (normalized, _) = self.normalize(input);
        self.scale_shift(&normalized)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self {
            scale: self.scale.clone(),
            shift: self.shift.clone(),
            groups: self.groups,
            normalized_cache: None,
            inv_std_cache: Vec::new(),
        })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let normalized = self.normalized_cache.as_ref().expect("backward before training forward");
        let (batch, ch, h, w) =
            (grad_output.dim(0), grad_output.dim(1), grad_output.dim(2), grad_output.dim(3));
        let group_ch = ch / self.groups;
        let group_len = group_ch * h * w;
        let hw = h * w;

        let dy = grad_output.data();
        let xhat = normalized.data();

        // Parameter gradients.
        {
            let dscale = self.scale.grad_mut().data_mut();
            let dshift = self.shift.grad_mut().data_mut();
            for b in 0..batch {
                for c in 0..ch {
                    let start = (b * ch + c) * hw;
                    let mut s_scale = 0.0;
                    let mut s_shift = 0.0;
                    for i in start..start + hw {
                        s_scale += dy[i] * xhat[i];
                        s_shift += dy[i];
                    }
                    dscale[c] += s_scale;
                    dshift[c] += s_shift;
                }
            }
        }

        // Input gradient: dx = inv_std * (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat))
        let mut dx = Tensor::zeros(grad_output.shape());
        let scale = self.scale.value().data();
        let dxd = dx.data_mut();
        for b in 0..batch {
            for g in 0..self.groups {
                let start = b * ch * hw + g * group_len;
                let inv_std = self.inv_std_cache[b * self.groups + g];
                let mut sum_dxhat = 0.0f64;
                let mut sum_dxhat_xhat = 0.0f64;
                for local in 0..group_len {
                    let c = g * group_ch + local / hw;
                    let i = start + local;
                    let dxhat = (dy[i] * (1.0 + scale[c])) as f64;
                    sum_dxhat += dxhat;
                    sum_dxhat_xhat += dxhat * xhat[i] as f64;
                }
                let mean_dxhat = (sum_dxhat / group_len as f64) as f32;
                let mean_dxhat_xhat = (sum_dxhat_xhat / group_len as f64) as f32;
                for local in 0..group_len {
                    let c = g * group_ch + local / hw;
                    let i = start + local;
                    let dxhat = dy[i] * (1.0 + scale[c]);
                    dxd[i] = inv_std * (dxhat - mean_dxhat - xhat[i] * mean_dxhat_xhat);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.scale);
        visitor(&mut self.shift);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.scale);
        visitor(&self.shift);
    }

    fn layer_type(&self) -> &'static str {
        "GroupNorm"
    }

    fn clear_cache(&mut self) {
        self.normalized_cache = None;
        self.inv_std_cache = Vec::new();
    }
}

/// Batch normalization over `[batch, ch, h, w]` with running statistics.
///
/// In [`Mode::Train`] the layer normalizes with batch statistics and updates
/// the running mean/variance with momentum 0.1. In [`Mode::Eval`] it uses
/// the running statistics (the deployment behaviour whose fragility under
/// weight bit errors the paper demonstrates). [`Mode::EvalBatchStats`]
/// recomputes statistics from the evaluation batch without updating the
/// running buffers.
#[derive(Debug)]
pub struct BatchNorm2d {
    scale: Param, // alpha' = alpha - 1
    shift: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    normalized_cache: Option<Tensor>,
    inv_std_cache: Vec<f32>, // [ch]
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with identity initialization.
    pub fn new(channels: usize) -> Self {
        Self {
            scale: Param::new("scale", ParamKind::NormScale, Tensor::zeros(&[channels])),
            shift: Param::new("shift", ParamKind::NormBias, Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            normalized_cache: None,
            inv_std_cache: Vec::new(),
        }
    }

    /// Read access to the running mean (for tests and serialization).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Read access to the running variance.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Overwrites the running statistics (used when loading a saved model).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the channel count.
    pub fn set_running_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.running_mean.len(), "running mean length");
        assert_eq!(var.len(), self.running_var.len(), "running var length");
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }

    /// Per-channel batch statistics of `input`.
    fn batch_stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (batch, ch, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let hw = h * w;
        let n = batch * hw;
        let x = input.data();
        let mut means = vec![0f32; ch];
        let mut vars = vec![0f32; ch];
        for c in 0..ch {
            let mut sum = 0.0f64;
            for b in 0..batch {
                let start = (b * ch + c) * hw;
                sum += x[start..start + hw].iter().map(|&v| v as f64).sum::<f64>();
            }
            let mean = (sum / n as f64) as f32;
            let mut var = 0.0f64;
            for b in 0..batch {
                let start = (b * ch + c) * hw;
                var +=
                    x[start..start + hw].iter().map(|&v| ((v - mean) as f64).powi(2)).sum::<f64>();
            }
            means[c] = mean;
            vars[c] = (var / n as f64) as f32;
        }
        (means, vars)
    }

    /// Normalizes with the given statistics and applies scale/shift; returns
    /// `(out, normalized, inv_stds)` so `forward` can cache the latter two.
    fn apply_stats(
        &self,
        input: &Tensor,
        means: &[f32],
        vars: &[f32],
    ) -> (Tensor, Tensor, Vec<f32>) {
        let (batch, ch, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let hw = h * w;

        let mut normalized = input.clone();
        let mut inv_stds = vec![0f32; ch];
        {
            let data = normalized.data_mut();
            for c in 0..ch {
                let inv_std = 1.0 / (vars[c] + EPS).sqrt();
                inv_stds[c] = inv_std;
                for b in 0..batch {
                    let start = (b * ch + c) * hw;
                    for v in &mut data[start..start + hw] {
                        *v = (*v - means[c]) * inv_std;
                    }
                }
            }
        }

        let mut out = normalized.clone();
        {
            let scale = self.scale.value().data();
            let shift = self.shift.value().data();
            let data = out.data_mut();
            for c in 0..ch {
                let gamma = 1.0 + scale[c];
                let beta = shift[c];
                for b in 0..batch {
                    let start = (b * ch + c) * hw;
                    for v in &mut data[start..start + hw] {
                        *v = gamma * *v + beta;
                    }
                }
            }
        }
        (out, normalized, inv_stds)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 4, "BatchNorm2d expects [batch, ch, h, w]");
        assert_eq!(input.dim(1), self.scale.numel(), "BatchNorm2d channel mismatch");

        let use_batch_stats = matches!(mode, Mode::Train | Mode::EvalBatchStats);
        let (means, vars) = if use_batch_stats {
            let (means, vars) = self.batch_stats(input);
            if mode.is_train() {
                for c in 0..means.len() {
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * means[c];
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * vars[c];
                }
            }
            (means, vars)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let (out, normalized, inv_stds) = self.apply_stats(input, &means, &vars);
        if mode.is_train() {
            self.normalized_cache = Some(normalized);
            self.inv_std_cache = inv_stds;
        }
        out
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        assert_eq!(input.ndim(), 4, "BatchNorm2d expects [batch, ch, h, w]");
        assert_eq!(input.dim(1), self.scale.numel(), "BatchNorm2d channel mismatch");

        let (means, vars) = if matches!(mode, Mode::EvalBatchStats) {
            self.batch_stats(input)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        self.apply_stats(input, &means, &vars).0
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self {
            scale: self.scale.clone(),
            shift: self.shift.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            momentum: self.momentum,
            normalized_cache: None,
            inv_std_cache: Vec::new(),
        })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let normalized = self.normalized_cache.as_ref().expect("backward before training forward");
        let (batch, ch, h, w) =
            (grad_output.dim(0), grad_output.dim(1), grad_output.dim(2), grad_output.dim(3));
        let hw = h * w;
        let n = (batch * hw) as f32;

        let dy = grad_output.data();
        let xhat = normalized.data();
        let scale: Vec<f32> = self.scale.value().data().to_vec();

        let mut dx = Tensor::zeros(grad_output.shape());
        let dxd = dx.data_mut();
        {
            let dscale = self.scale.grad_mut().data_mut();
            let dshift = self.shift.grad_mut().data_mut();
            for c in 0..ch {
                let mut sum_dy = 0.0f64;
                let mut sum_dy_xhat = 0.0f64;
                for b in 0..batch {
                    let start = (b * ch + c) * hw;
                    for i in start..start + hw {
                        sum_dy += dy[i] as f64;
                        sum_dy_xhat += (dy[i] * xhat[i]) as f64;
                    }
                }
                dscale[c] += sum_dy_xhat as f32;
                dshift[c] += sum_dy as f32;

                let gamma = 1.0 + scale[c];
                let inv_std = self.inv_std_cache[c];
                let mean_dxhat = gamma * sum_dy as f32 / n;
                let mean_dxhat_xhat = gamma * sum_dy_xhat as f32 / n;
                for b in 0..batch {
                    let start = (b * ch + c) * hw;
                    for i in start..start + hw {
                        let dxhat = dy[i] * gamma;
                        dxd[i] = inv_std * (dxhat - mean_dxhat - xhat[i] * mean_dxhat_xhat);
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.scale);
        visitor(&mut self.shift);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.scale);
        visitor(&self.shift);
    }

    fn layer_type(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn clear_cache(&mut self) {
        self.normalized_cache = None;
        self.inv_std_cache = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradients, GradCheckConfig};
    use rand::SeedableRng;

    #[test]
    fn groupnorm_normalizes_each_group() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut gn = GroupNorm::new(4, 2);
        let x = Tensor::randn(&[3, 4, 5, 5], 3.0, &mut rng);
        let y = gn.forward(&x, Mode::Eval);
        // With identity scale/shift, each (sample, group) chunk of the output
        // has mean ~0 and variance ~1.
        let group_len = 2 * 25;
        for b in 0..3 {
            for g in 0..2 {
                let start = b * 4 * 25 + g * group_len;
                let chunk = &y.data()[start..start + group_len];
                let mean = chunk.iter().sum::<f32>() / group_len as f32;
                let var =
                    chunk.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / group_len as f32;
                assert!(mean.abs() < 1e-4, "mean {mean}");
                assert!((var - 1.0).abs() < 1e-2, "var {var}");
            }
        }
    }

    #[test]
    fn groupnorm_gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut gn = GroupNorm::new(4, 2);
        // Non-identity scale/shift to exercise those paths.
        gn.scale.value_mut().data_mut().copy_from_slice(&[0.3, -0.2, 0.1, 0.0]);
        gn.shift.value_mut().data_mut().copy_from_slice(&[0.5, 0.0, -0.5, 0.1]);
        check_layer_gradients(&mut gn, &[2, 4, 3, 3], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn batchnorm_train_normalizes_per_channel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[8, 3, 4, 4], 2.0, &mut rng);
        let y = bn.forward(&x, Mode::Train);
        for c in 0..3 {
            let mut vals = Vec::new();
            for b in 0..8 {
                let start = (b * 3 + c) * 16;
                vals.extend_from_slice(&y.data()[start..start + 16]);
            }
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut bn = BatchNorm2d::new(2);
        // Warm up running stats.
        for _ in 0..200 {
            let x = Tensor::randn(&[16, 2, 2, 2], 1.0, &mut rng).map(|v| v + 5.0);
            let _ = bn.forward(&x, Mode::Train);
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.3);
        // Eval with shifted input: output mean reflects the mismatch.
        let x = Tensor::full(&[4, 2, 2, 2], 5.0);
        let y = bn.forward(&x, Mode::Eval);
        assert!(y.mean().abs() < 0.5, "eval should roughly center 5.0 via running stats");
        // EvalBatchStats re-centres exactly (variance is 0 -> output 0).
        let y2 = bn.forward(&x, Mode::EvalBatchStats);
        assert!(y2.abs_max() < 1e-2);
    }

    #[test]
    fn batchnorm_gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut bn = BatchNorm2d::new(3);
        bn.scale.value_mut().data_mut().copy_from_slice(&[0.2, -0.1, 0.0]);
        bn.shift.value_mut().data_mut().copy_from_slice(&[0.1, 0.3, -0.2]);
        check_layer_gradients(&mut bn, &[4, 3, 3, 3], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn set_running_stats_round_trips() {
        let mut bn = BatchNorm2d::new(2);
        bn.set_running_stats(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(bn.running_mean(), &[1.0, 2.0]);
        assert_eq!(bn.running_var(), &[3.0, 4.0]);
    }
}
