//! Elementwise activations.

use bitrobust_tensor::Tensor;

use crate::{Layer, Mode};

/// Rectified linear unit, `y = max(0, x)`.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::{Layer, Mode, Relu};
/// use bitrobust_tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![1, 3], vec![-1.0, 0.0, 2.0]);
/// let y = relu.forward(&x, Mode::Eval);
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: Vec::new() }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.mask = input.data().iter().map(|&v| v > 0.0).collect();
        }
        input.map(|v| v.max(0.0))
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        input.map(|v| v.max(0.0))
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.numel(),
            self.mask.len(),
            "backward called without a matching training forward"
        );
        let mut grad = grad_output.clone();
        for (g, &keep) in grad.data_mut().iter_mut().zip(&self.mask) {
            if !keep {
                *g = 0.0;
            }
        }
        grad
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "Relu"
    }

    fn clear_cache(&mut self) {
        self.mask = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = relu.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.5, 0.5, 2.0]);
        let _ = relu.forward(&x, Mode::Train);
        let g = Tensor::from_vec(vec![4], vec![1.0, 1.0, 1.0, 1.0]);
        let gx = relu.backward(&g);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1], vec![0.0]);
        let _ = relu.forward(&x, Mode::Train);
        let gx = relu.backward(&Tensor::from_vec(vec![1], vec![5.0]));
        assert_eq!(gx.data(), &[0.0]);
    }
}
