//! Quantize/dequantize throughput across the scheme lattice.

use bitrobust_quant::QuantScheme;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_quantize(c: &mut Criterion) {
    let weights: Vec<f32> = (0..65_536).map(|i| ((i % 997) as f32 - 498.0) * 1e-3).collect();
    let mut group = c.benchmark_group("quantize_64k");
    group.throughput(Throughput::Elements(weights.len() as u64));
    for (name, scheme) in [
        ("normal8", QuantScheme::normal(8)),
        ("rquant8", QuantScheme::rquant(8)),
        ("rquant4", QuantScheme::rquant(4)),
        ("global8", QuantScheme::eq1_global(8)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            b.iter(|| s.quantize(std::hint::black_box(&weights)))
        });
    }
    group.finish();
}

fn bench_dequantize(c: &mut Criterion) {
    let weights: Vec<f32> = (0..65_536).map(|i| ((i % 997) as f32 - 498.0) * 1e-3).collect();
    let mut group = c.benchmark_group("dequantize_64k");
    group.throughput(Throughput::Elements(weights.len() as u64));
    for (name, scheme) in [("rquant8", QuantScheme::rquant(8)), ("normal8", QuantScheme::normal(8))]
    {
        let q = scheme.quantize(&weights);
        let mut out = vec![0f32; weights.len()];
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| q.dequantize_into(std::hint::black_box(&mut out)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantize, bench_dequantize);
criterion_main!(benches);
