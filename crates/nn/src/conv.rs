//! 2-D convolution via a fused im2col-GEMM, parallelized over the batch.
//!
//! Instead of materializing the full `[in_ch*kh*kw, oh*ow]` column matrix
//! per sample, the forward and backward passes lower one *panel* of at most
//! [`CONV_COL_PANEL`] output positions at a time and feed it straight into
//! the packed GEMM (`bitrobust_tensor::gemm`), keeping the per-sample
//! working set at `k * CONV_COL_PANEL` floats regardless of the spatial
//! output size.

use std::cell::RefCell;

use bitrobust_tensor::{gemm::gemm, parallel_for_disjoint_chunks, GemmOperand, Tensor};
use rand::Rng;

use crate::{init, Layer, Mode, Param, ParamKind};

/// Maximum number of im2col columns (output spatial positions) materialized
/// at once by the fused conv kernels.
///
/// Like the GEMM tile sizes, this constant is part of the workspace's
/// numerical contract: the input-gradient pass scatters panel by panel, so
/// changing the panel width changes the accumulation order of overlapping
/// windows in `dX` (and therefore training bits). Regenerate the goldens in
/// `crates/core/tests/golden.rs` if it ever changes.
pub const CONV_COL_PANEL: usize = 128;

thread_local! {
    /// Per-worker im2col panel scratch, reused across layer calls.
    static COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// The static geometry of one conv application, shared by the per-sample
/// kernels.
#[derive(Clone, Copy)]
struct ConvDims {
    ic: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    oc: usize,
}

impl ConvDims {
    /// im2col rows: `in_ch * kh * kw`.
    fn k(&self) -> usize {
        self.ic * self.kernel * self.kernel
    }

    /// Output spatial positions (`oh * ow` — im2col columns).
    fn ohw(&self) -> usize {
        self.oh * self.ow
    }

    /// Columns materialized per panel.
    fn panel(&self) -> usize {
        CONV_COL_PANEL.min(self.ohw())
    }
}

/// A 2-D convolution over `[batch, in_ch, h, w]` inputs (NCHW).
///
/// The forward pass lowers each sample to column *panels* of at most
/// [`CONV_COL_PANEL`] output positions (never the full `[in_ch*kh*kw,
/// oh*ow]` matrix) and multiplies by the `[out_ch, in_ch*kh*kw]` weight via
/// the packed GEMM; samples are processed in parallel on the workspace
/// thread pool. The backward pass recomputes the panels rather than caching
/// them, trading ~10% compute for a large reduction in peak memory.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::{Conv2d, Layer, Mode};
/// use bitrobust_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng); // 3x3, stride 1, pad 1
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    kernel: usize,
    stride: usize,
    padding: usize,
    input_cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            weight: Param::new(
                "weight",
                ParamKind::Weight,
                init::he_conv(out_ch, in_ch, kernel, kernel, rng),
            ),
            bias: Param::new("bias", ParamKind::Bias, Tensor::zeros(&[out_ch])),
            kernel,
            stride,
            padding,
            input_cache: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value().dim(1)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value().dim(0)
    }

    /// Kernel size (square).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output spatial size for a given input spatial size.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// The geometry of applying this layer to `[batch, ic, h, w]` input.
    fn dims(&self, input: &Tensor) -> (usize, ConvDims) {
        assert_eq!(input.ndim(), 4, "Conv2d expects [batch, ch, h, w]");
        let (batch, ic, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        assert_eq!(ic, self.in_channels(), "Conv2d channel mismatch");
        let (oh, ow) = self.output_size(h, w);
        let d = ConvDims {
            ic,
            h,
            w,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            oh,
            ow,
            oc: self.out_channels(),
        };
        (batch, d)
    }

    /// The cache-free forward computation shared by `forward` and `infer`.
    fn compute(&self, input: &Tensor) -> Tensor {
        let (batch, d) = self.dims(input);
        let mut out = Tensor::zeros(&[batch, d.oc, d.oh, d.ow]);
        let sample_in = d.ic * d.h * d.w;
        let sample_out = d.oc * d.ohw();
        let weight = self.weight.value().data();
        let bias = self.bias.value().data();
        let x = input.data();

        parallel_for_disjoint_chunks(out.data_mut(), sample_out, |s, out_s| {
            COL_SCRATCH.with(|scratch| {
                let cols = &mut *scratch.borrow_mut();
                forward_sample(out_s, &x[s * sample_in..(s + 1) * sample_in], weight, d, cols);
                for c in 0..d.oc {
                    let b = bias[c];
                    for v in &mut out_s[c * d.ohw()..(c + 1) * d.ohw()] {
                        *v += b;
                    }
                }
            });
        });
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.input_cache = Some(input.clone());
        }
        self.compute(input)
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        self.compute(input)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            input_cache: None,
        })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input_cache.as_ref().expect("backward before training forward");
        let (batch, d) = self.dims(input);
        let (k, ohw) = (d.k(), d.ohw());
        assert_eq!(grad_output.shape(), &[batch, d.oc, d.oh, d.ow], "grad_output shape mismatch");

        let sample_in = d.ic * d.h * d.w;
        let sample_out = d.oc * ohw;
        let x = input.data();
        let dy = grad_output.data();

        // Pass A: per-sample partial dW/db into a scratch buffer, reduced
        // serially afterwards (the per-sample partials are small).
        let part_len = d.oc * k + d.oc;
        let mut partials = vec![0f32; batch * part_len];
        parallel_for_disjoint_chunks(&mut partials, part_len, |s, part| {
            COL_SCRATCH.with(|scratch| {
                let cols = &mut *scratch.borrow_mut();
                let x_s = &x[s * sample_in..(s + 1) * sample_in];
                let dy_s = &dy[s * sample_out..(s + 1) * sample_out];
                let (dw_part, db_part) = part.split_at_mut(d.oc * k);
                backward_w_sample(dw_part, dy_s, x_s, d, cols);
                for c in 0..d.oc {
                    db_part[c] = dy_s[c * ohw..(c + 1) * ohw].iter().sum();
                }
            });
        });
        {
            let dw = self.weight.grad_mut().data_mut();
            for s in 0..batch {
                let dw_part = &partials[s * part_len..s * part_len + d.oc * k];
                for (a, &b) in dw.iter_mut().zip(dw_part) {
                    *a += b;
                }
            }
        }
        {
            let db = self.bias.grad_mut().data_mut();
            for s in 0..batch {
                let db_part = &partials[s * part_len + d.oc * k..(s + 1) * part_len];
                for (a, &b) in db.iter_mut().zip(db_part) {
                    *a += b;
                }
            }
        }

        // Pass B: per-sample dX = col2im(Wᵀ · dY_s), panel by panel.
        let weight = self.weight.value().data();
        let mut dx = Tensor::zeros(&[batch, d.ic, d.h, d.w]);
        parallel_for_disjoint_chunks(dx.data_mut(), sample_in, |s, dx_s| {
            COL_SCRATCH.with(|scratch| {
                let cols = &mut *scratch.borrow_mut();
                let dy_s = &dy[s * sample_out..(s + 1) * sample_out];
                backward_x_sample(dx_s, dy_s, weight, d, cols);
            });
        });
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "Conv2d"
    }

    fn clear_cache(&mut self) {
        self.input_cache = None;
    }
}

/// Fused forward for one sample: `out_s = W · im2col(x_s)`, one column
/// panel at a time. The scratch buffer is resized to exactly one panel
/// (`k * CONV_COL_PANEL` floats at most) — never the full column matrix.
fn forward_sample(
    out_s: &mut [f32],
    x_s: &[f32],
    weight: &[f32],
    d: ConvDims,
    cols: &mut Vec<f32>,
) {
    let (k, ohw, panel) = (d.k(), d.ohw(), d.panel());
    cols.resize(k * panel, 0.0);
    for v in out_s.iter_mut() {
        *v = 0.0;
    }
    let mut x0 = 0;
    while x0 < ohw {
        let ncols = panel.min(ohw - x0);
        let cols_p = &mut cols[..k * ncols];
        im2col_panel(x_s, d, x0, ncols, cols_p);
        // out_s[:, x0..x0+ncols] += W [oc, k] · panel [k, ncols]
        gemm(
            &mut out_s[x0..],
            ohw,
            GemmOperand::row_major(weight, k),
            GemmOperand::row_major(cols_p, ncols),
            d.oc,
            k,
            ncols,
        );
        x0 += ncols;
    }
}

/// Fused weight-gradient pass for one sample:
/// `dw_part += dY_s · im2col(x_s)ᵀ`, one column panel at a time.
fn backward_w_sample(
    dw_part: &mut [f32],
    dy_s: &[f32],
    x_s: &[f32],
    d: ConvDims,
    cols: &mut Vec<f32>,
) {
    let (k, ohw, panel) = (d.k(), d.ohw(), d.panel());
    cols.resize(k * panel, 0.0);
    let mut x0 = 0;
    while x0 < ohw {
        let ncols = panel.min(ohw - x0);
        let cols_p = &mut cols[..k * ncols];
        im2col_panel(x_s, d, x0, ncols, cols_p);
        // dW [oc, k] += dY_s[:, x0..x0+ncols] · panelᵀ [ncols, k]
        gemm(
            dw_part,
            k,
            GemmOperand::strided(&dy_s[x0..], ohw),
            GemmOperand::transposed(cols_p, ncols),
            d.oc,
            ncols,
            k,
        );
        x0 += ncols;
    }
}

/// Fused input-gradient pass for one sample:
/// `dx_s = col2im(Wᵀ · dY_s)`, one column panel at a time.
fn backward_x_sample(
    dx_s: &mut [f32],
    dy_s: &[f32],
    weight: &[f32],
    d: ConvDims,
    cols: &mut Vec<f32>,
) {
    let (k, ohw, panel) = (d.k(), d.ohw(), d.panel());
    cols.resize(k * panel, 0.0);
    for v in dx_s.iter_mut() {
        *v = 0.0;
    }
    let mut x0 = 0;
    while x0 < ohw {
        let ncols = panel.min(ohw - x0);
        let dcols = &mut cols[..k * ncols];
        dcols.fill(0.0);
        // dcols [k, ncols] = Wᵀ [k, oc] · dY_s[:, x0..x0+ncols]
        gemm(
            dcols,
            ncols,
            GemmOperand::transposed(weight, k),
            GemmOperand::strided(&dy_s[x0..], ohw),
            k,
            d.oc,
            ncols,
        );
        col2im_panel(dcols, d, x0, ncols, dx_s);
        x0 += ncols;
    }
}

/// Lowers output positions `x0 .. x0 + ncols` of one `[ic, h, w]` sample
/// into a column panel `[ic*k*k, ncols]` (columns of the full im2col matrix,
/// without ever materializing it).
fn im2col_panel(x: &[f32], d: ConvDims, x0: usize, ncols: usize, cols: &mut [f32]) {
    let (h, w, ow) = (d.h, d.w, d.ow);
    for c in 0..d.ic {
        let x_c = &x[c * h * w..(c + 1) * h * w];
        for ky in 0..d.kernel {
            for kx in 0..d.kernel {
                let r = (c * d.kernel + ky) * d.kernel + kx;
                let row_out = &mut cols[r * ncols..(r + 1) * ncols];
                let mut xi = 0;
                while xi < ncols {
                    // Contiguous run of output positions sharing one oy row.
                    let pos = x0 + xi;
                    let (oy, ox0) = (pos / ow, pos % ow);
                    let run = (ow - ox0).min(ncols - xi);
                    let seg = &mut row_out[xi..xi + run];
                    let iy = (oy * d.stride + ky) as isize - d.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                    } else {
                        let x_row = &x_c[iy as usize * w..(iy as usize + 1) * w];
                        for (i, slot) in seg.iter_mut().enumerate() {
                            let ix = ((ox0 + i) * d.stride + kx) as isize - d.padding as isize;
                            *slot =
                                if ix < 0 || ix >= w as isize { 0.0 } else { x_row[ix as usize] };
                        }
                    }
                    xi += run;
                }
            }
        }
    }
}

/// Scatters column-gradient panel `[ic*k*k, ncols]` (output positions
/// `x0 .. x0 + ncols`) back into one `[ic, h, w]` input-gradient sample,
/// accumulating overlaps.
fn col2im_panel(dcols: &[f32], d: ConvDims, x0: usize, ncols: usize, dx: &mut [f32]) {
    let (h, w, ow) = (d.h, d.w, d.ow);
    for c in 0..d.ic {
        let dx_c = &mut dx[c * h * w..(c + 1) * h * w];
        for ky in 0..d.kernel {
            for kx in 0..d.kernel {
                let r = (c * d.kernel + ky) * d.kernel + kx;
                let row = &dcols[r * ncols..(r + 1) * ncols];
                let mut xi = 0;
                while xi < ncols {
                    let pos = x0 + xi;
                    let (oy, ox0) = (pos / ow, pos % ow);
                    let run = (ow - ox0).min(ncols - xi);
                    let iy = (oy * d.stride + ky) as isize - d.padding as isize;
                    if iy >= 0 && iy < h as isize {
                        let dx_row = &mut dx_c[iy as usize * w..(iy as usize + 1) * w];
                        for (i, &v) in row[xi..xi + run].iter().enumerate() {
                            let ix = ((ox0 + i) * d.stride + kx) as isize - d.padding as isize;
                            if ix >= 0 && ix < w as isize {
                                dx_row[ix as usize] += v;
                            }
                        }
                    }
                    xi += run;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradients, GradCheckConfig};
    use rand::SeedableRng;

    /// Direct (quadruple-loop) convolution as a reference.
    fn naive_conv(x: &Tensor, w: &Tensor, b: &Tensor, stride: usize, padding: usize) -> Tensor {
        let (batch, ic, h, wid) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (oc, _, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
        let oh = (h + 2 * padding - kh) / stride + 1;
        let ow = (wid + 2 * padding - kw) / stride + 1;
        let mut out = Tensor::zeros(&[batch, oc, oh, ow]);
        for s in 0..batch {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b.data()[o];
                        for c in 0..ic {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - padding as isize;
                                    let ix = (ox * stride + kx) as isize - padding as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < wid as isize {
                                        acc += x.at(&[s, c, iy as usize, ix as usize])
                                            * w.at(&[o, c, ky, kx]);
                                    }
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive_conv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let mut conv = Conv2d::new(3, 4, 3, stride, padding, &mut rng);
            let x = Tensor::randn(&[2, 3, 7, 7], 1.0, &mut rng);
            let y = conv.forward(&x, Mode::Eval);
            let y_ref = naive_conv(&x, conv.weight.value(), conv.bias.value(), stride, padding);
            assert_eq!(y.shape(), y_ref.shape());
            for (a, b) in y.data().iter().zip(y_ref.data()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    /// The fused path must agree with the naive reference when `oh*ow`
    /// exceeds [`CONV_COL_PANEL`] (multiple panels per sample, including a
    /// partial trailing panel at 18*18 = 324 = 2*128 + 68 positions).
    #[test]
    fn multi_panel_forward_matches_naive_conv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 18, 18], 1.0, &mut rng);
        const { assert!(18 * 18 > CONV_COL_PANEL, "shape must span multiple panels") };
        let y = conv.forward(&x, Mode::Eval);
        let y_ref = naive_conv(&x, conv.weight.value(), conv.bias.value(), 1, 1);
        for (a, b) in y.data().iter().zip(y_ref.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// The fused kernels must never materialize the full `[k, oh*ow]`
    /// column matrix: the scratch they request is exactly one panel.
    #[test]
    fn fused_path_scratch_is_one_panel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 3, 16, 16], 1.0, &mut rng);
        let (_, d) = conv.dims(&x);
        let (k, ohw) = (d.k(), d.ohw());
        assert!(ohw > CONV_COL_PANEL, "16x16 output must span multiple panels");

        let mut out = vec![0.0; d.oc * ohw];
        let mut cols = Vec::new();
        forward_sample(&mut out, x.data(), conv.weight.value().data(), d, &mut cols);
        assert_eq!(cols.len(), k * CONV_COL_PANEL, "forward scratch must be one panel");
        assert!(cols.len() < k * ohw, "forward scratch must stay below the full matrix");

        let dy = vec![1.0; d.oc * ohw];
        let mut dw = vec![0.0; d.oc * k];
        let mut cols = Vec::new();
        backward_w_sample(&mut dw, &dy, x.data(), d, &mut cols);
        assert_eq!(cols.len(), k * CONV_COL_PANEL, "dW scratch must be one panel");

        let mut dx = vec![0.0; 3 * 16 * 16];
        let mut cols = Vec::new();
        backward_x_sample(&mut dx, &dy, conv.weight.value().data(), d, &mut cols);
        assert_eq!(cols.len(), k * CONV_COL_PANEL, "dX scratch must be one panel");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        check_layer_gradients(&mut conv, &[2, 2, 5, 5], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn strided_gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng);
        check_layer_gradients(&mut conv, &[1, 2, 6, 6], &GradCheckConfig::default(), &mut rng);
    }

    /// Gradients stay correct when the spatial output spans several panels
    /// (exercises the panel-blocked dW and dX paths end to end).
    #[test]
    fn multi_panel_gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        check_layer_gradients(&mut conv, &[1, 1, 12, 12], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn output_size_formula() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let conv = Conv2d::new(1, 1, 3, 2, 1, &mut rng);
        assert_eq!(conv.output_size(16, 16), (8, 8));
        assert_eq!(conv.output_size(7, 9), (4, 5));
    }
}
