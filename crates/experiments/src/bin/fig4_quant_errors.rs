//! **Fig. 4** — Quantization schemes and the shape of random bit error
//! noise.
//!
//! Quantizes a trained CIFAR10 model's weights under four schemes, injects
//! `p = 2.5%` random bit errors, and summarizes the induced weight
//! perturbations (max/mean absolute error, mean relative error, fraction of
//! affected weights). The paper's scatter plots reduce to these summary
//! statistics: global symmetric quantization suffers the largest absolute
//! errors; asymmetric per-layer quantization shrinks them; clipping shrinks
//! absolute errors further while *relative* errors grow.

use bitrobust_biterror::UniformChip;
use bitrobust_core::{QuantizedModel, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{dataset_pair, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);

    // One reference model trained with robust quantization, one with
    // 4-bit clipping (the right panel of Fig. 4).
    let mut spec8 =
        ZooSpec::new(DatasetKind::Cifar10, Some(QuantScheme::rquant(8)), TrainMethod::Normal);
    spec8.epochs = opts.epochs(spec8.epochs);
    let (mut model8, _) = zoo_model(&spec8, &train_ds, &test_ds, opts.no_cache);

    let mut spec4 = ZooSpec::new(
        DatasetKind::Cifar10,
        Some(QuantScheme::rquant(4)),
        TrainMethod::Clipping { wmax: 0.1 },
    );
    spec4.epochs = opts.epochs(spec4.epochs);
    let (mut model4, _) = zoo_model(&spec4, &train_ds, &test_ds, opts.no_cache);

    let p = 0.025;
    println!("Fig. 4: weight perturbations under p = {:.1}% random bit errors\n", 100.0 * p);
    let mut table =
        Table::new(&["scheme", "max |err|", "mean |err|", "mean rel err", "affected %"]);

    let schemes8 = [
        ("global, m=8 (Eq.1 qmax=global)", QuantScheme::eq1_global(8)),
        ("per-layer (NORMAL), m=8", QuantScheme::normal(8)),
        ("+asymmetric, m=8", QuantScheme::asymmetric_signed(8)),
        ("RQuant (asym/unsigned/round)", QuantScheme::rquant(8)),
    ];
    for (name, scheme) in schemes8 {
        table.row_owned(stats_row(name, &mut model8, scheme, p));
    }
    table.row_owned(stats_row("Clipping 0.1, m=4", &mut model4, QuantScheme::rquant(4), p));
    println!("{}", table.render());
    println!("Expected shape (paper): global >> per-layer on absolute errors;");
    println!("clipping shrinks absolute errors but relative errors grow.");
}

fn stats_row(
    name: &str,
    model: &mut bitrobust_nn::Model,
    scheme: QuantScheme,
    p: f64,
) -> Vec<String> {
    let q0 = QuantizedModel::quantize(model, scheme);
    let clean: Vec<f32> = q0.tensors().iter().flat_map(|t| t.dequantize()).collect();
    let mut q = q0.clone();
    q.inject(&UniformChip::new(CHIP_SEED).at_rate(p));
    let dirty: Vec<f32> = q.tensors().iter().flat_map(|t| t.dequantize()).collect();

    let max_abs_weight = clean.iter().fold(0f64, |m, &v| m.max(v.abs() as f64)).max(1e-12);
    let mut max_err = 0f64;
    let mut sum_err = 0f64;
    let mut sum_rel = 0f64;
    let mut affected = 0usize;
    for (&c, &d) in clean.iter().zip(&dirty) {
        let e = (d - c).abs() as f64;
        max_err = max_err.max(e);
        sum_err += e;
        sum_rel += e / max_abs_weight;
        if e > 0.0 {
            affected += 1;
        }
    }
    let n = clean.len() as f64;
    vec![
        name.to_string(),
        format!("{max_err:.4}"),
        format!("{:.5}", sum_err / n),
        format!("{:.5}", sum_rel / n),
        format!("{:.2}", 100.0 * affected as f64 / n),
    ]
}
