//! # bitrobust-bench
//!
//! Criterion benchmarks for the bitrobust substrates. See the `benches/`
//! directory: quantization throughput, bit error injection, NN
//! forward/backward, end-to-end robust evaluation, and the SRAM models.

#![forbid(unsafe_code)]
