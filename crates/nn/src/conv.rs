//! 2-D convolution via im2col, parallelized over the batch.

use std::cell::RefCell;

use bitrobust_tensor::{
    matmul_accumulate, matmul_nt_accumulate, matmul_tn_accumulate, parallel_for_disjoint_chunks,
    Tensor,
};
use rand::Rng;

use crate::{init, Layer, Mode, Param, ParamKind};

thread_local! {
    /// Per-worker im2col scratch, reused across layer calls.
    static COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// A 2-D convolution over `[batch, in_ch, h, w]` inputs (NCHW).
///
/// The forward pass lowers each sample to a `[in_ch*kh*kw, oh*ow]` column
/// matrix (im2col) and multiplies by the `[out_ch, in_ch*kh*kw]` weight;
/// samples are processed in parallel on the workspace thread pool. The
/// backward pass recomputes im2col rather than caching it, trading ~10%
/// compute for a large reduction in peak memory.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::{Conv2d, Layer, Mode};
/// use bitrobust_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng); // 3x3, stride 1, pad 1
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    kernel: usize,
    stride: usize,
    padding: usize,
    input_cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            weight: Param::new(
                "weight",
                ParamKind::Weight,
                init::he_conv(out_ch, in_ch, kernel, kernel, rng),
            ),
            bias: Param::new("bias", ParamKind::Bias, Tensor::zeros(&[out_ch])),
            kernel,
            stride,
            padding,
            input_cache: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value().dim(1)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value().dim(0)
    }

    /// Output spatial size for a given input spatial size.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// The cache-free forward computation shared by `forward` and `infer`.
    fn compute(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "Conv2d expects [batch, ch, h, w]");
        let (batch, ic, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        assert_eq!(ic, self.in_channels(), "Conv2d channel mismatch");
        let (oh, ow) = self.output_size(h, w);
        let oc = self.out_channels();
        let k = ic * self.kernel * self.kernel;

        let mut out = Tensor::zeros(&[batch, oc, oh, ow]);
        let sample_in = ic * h * w;
        let sample_out = oc * oh * ow;
        let weight = self.weight.value().data();
        let bias = self.bias.value().data();
        let x = input.data();
        let (kernel, stride, padding) = (self.kernel, self.stride, self.padding);

        parallel_for_disjoint_chunks(out.data_mut(), sample_out, |s, out_s| {
            COL_SCRATCH.with(|scratch| {
                let mut cols = scratch.borrow_mut();
                cols.resize(k * oh * ow, 0.0);
                let x_s = &x[s * sample_in..(s + 1) * sample_in];
                im2col(x_s, ic, h, w, kernel, stride, padding, oh, ow, &mut cols);
                // out_s = W [oc, k] · cols [k, oh*ow]
                for v in out_s.iter_mut() {
                    *v = 0.0;
                }
                matmul_accumulate(out_s, weight, &cols, oc, k, oh * ow);
                for c in 0..oc {
                    let b = bias[c];
                    for v in &mut out_s[c * oh * ow..(c + 1) * oh * ow] {
                        *v += b;
                    }
                }
            });
        });
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.input_cache = Some(input.clone());
        }
        self.compute(input)
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        self.compute(input)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            input_cache: None,
        })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input_cache.as_ref().expect("backward before training forward");
        let (batch, ic, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let (oh, ow) = self.output_size(h, w);
        let oc = self.out_channels();
        let k = ic * self.kernel * self.kernel;
        assert_eq!(grad_output.shape(), &[batch, oc, oh, ow], "grad_output shape mismatch");

        let sample_in = ic * h * w;
        let sample_out = oc * oh * ow;
        let x = input.data();
        let dy = grad_output.data();
        let (kernel, stride, padding) = (self.kernel, self.stride, self.padding);

        // Pass A: per-sample partial dW/db into a scratch buffer, reduced
        // serially afterwards (the per-sample partials are small).
        let part_len = oc * k + oc;
        let mut partials = vec![0f32; batch * part_len];
        parallel_for_disjoint_chunks(&mut partials, part_len, |s, part| {
            COL_SCRATCH.with(|scratch| {
                let mut cols = scratch.borrow_mut();
                cols.resize(k * oh * ow, 0.0);
                let x_s = &x[s * sample_in..(s + 1) * sample_in];
                im2col(x_s, ic, h, w, kernel, stride, padding, oh, ow, &mut cols);
                let dy_s = &dy[s * sample_out..(s + 1) * sample_out];
                let (dw_part, db_part) = part.split_at_mut(oc * k);
                // dW_s = dY_s [oc, ohw] · cols [k, ohw]ᵀ
                matmul_nt_accumulate(dw_part, dy_s, &cols, oc, oh * ow, k);
                for c in 0..oc {
                    db_part[c] = dy_s[c * oh * ow..(c + 1) * oh * ow].iter().sum();
                }
            });
        });
        {
            let dw = self.weight.grad_mut().data_mut();
            for s in 0..batch {
                let dw_part = &partials[s * part_len..s * part_len + oc * k];
                for (a, &b) in dw.iter_mut().zip(dw_part) {
                    *a += b;
                }
            }
        }
        {
            let db = self.bias.grad_mut().data_mut();
            for s in 0..batch {
                let db_part = &partials[s * part_len + oc * k..(s + 1) * part_len];
                for (a, &b) in db.iter_mut().zip(db_part) {
                    *a += b;
                }
            }
        }

        // Pass B: per-sample dX = col2im(Wᵀ · dY_s).
        let weight = self.weight.value().data();
        let mut dx = Tensor::zeros(&[batch, ic, h, w]);
        parallel_for_disjoint_chunks(dx.data_mut(), sample_in, |s, dx_s| {
            COL_SCRATCH.with(|scratch| {
                let mut dcols = scratch.borrow_mut();
                dcols.resize(k * oh * ow, 0.0);
                for v in dcols.iter_mut() {
                    *v = 0.0;
                }
                let dy_s = &dy[s * sample_out..(s + 1) * sample_out];
                // dcols = W [oc, k]ᵀ · dY_s [oc, ohw]
                matmul_tn_accumulate(&mut dcols, weight, dy_s, k, oc, oh * ow);
                col2im(&dcols, ic, h, w, kernel, stride, padding, oh, ow, dx_s);
            });
        });
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn layer_type(&self) -> &'static str {
        "Conv2d"
    }

    fn clear_cache(&mut self) {
        self.input_cache = None;
    }
}

/// Lowers one `[ic, h, w]` sample into columns `[ic*k*k, oh*ow]`.
#[allow(clippy::too_many_arguments)]
fn im2col(
    x: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let ohw = oh * ow;
    for c in 0..ic {
        let x_c = &x[c * h * w..(c + 1) * h * w];
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row = ((c * kernel + ky) * kernel + kx) * ohw;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    let out_row = row + oy * ow;
                    if iy < 0 || iy >= h as isize {
                        cols[out_row..out_row + ow].iter_mut().for_each(|v| *v = 0.0);
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        cols[out_row + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            x_c[iy * w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters column gradients `[ic*k*k, oh*ow]` back into one `[ic, h, w]`
/// input-gradient sample (accumulating overlaps).
#[allow(clippy::too_many_arguments)]
fn col2im(
    dcols: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    dx: &mut [f32],
) {
    for v in dx.iter_mut() {
        *v = 0.0;
    }
    let ohw = oh * ow;
    for c in 0..ic {
        let dx_c = &mut dx[c * h * w..(c + 1) * h * w];
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row = ((c * kernel + ky) * kernel + kx) * ohw;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dx_c[iy * w + ix as usize] += dcols[row + oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradients, GradCheckConfig};
    use rand::SeedableRng;

    /// Direct (quadruple-loop) convolution as a reference.
    fn naive_conv(x: &Tensor, w: &Tensor, b: &Tensor, stride: usize, padding: usize) -> Tensor {
        let (batch, ic, h, wid) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (oc, _, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
        let oh = (h + 2 * padding - kh) / stride + 1;
        let ow = (wid + 2 * padding - kw) / stride + 1;
        let mut out = Tensor::zeros(&[batch, oc, oh, ow]);
        for s in 0..batch {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b.data()[o];
                        for c in 0..ic {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - padding as isize;
                                    let ix = (ox * stride + kx) as isize - padding as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < wid as isize {
                                        acc += x.at(&[s, c, iy as usize, ix as usize])
                                            * w.at(&[o, c, ky, kx]);
                                    }
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive_conv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let mut conv = Conv2d::new(3, 4, 3, stride, padding, &mut rng);
            let x = Tensor::randn(&[2, 3, 7, 7], 1.0, &mut rng);
            let y = conv.forward(&x, Mode::Eval);
            let y_ref = naive_conv(&x, conv.weight.value(), conv.bias.value(), stride, padding);
            assert_eq!(y.shape(), y_ref.shape());
            for (a, b) in y.data().iter().zip(y_ref.data()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        check_layer_gradients(&mut conv, &[2, 2, 5, 5], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn strided_gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng);
        check_layer_gradients(&mut conv, &[1, 2, 6, 6], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn output_size_formula() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let conv = Conv2d::new(1, 1, 3, 2, 1, &mut rng);
        assert_eq!(conv.output_size(16, 16), (8, 8));
        assert_eq!(conv.output_size(7, 9), (4, 5));
    }
}
