//! The [`Standard`] distribution and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a primitive type: full range for
/// integers and `bool`, `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly: `lo..hi` or `lo..=hi`.
///
/// Mirrors `rand::distributions::uniform::SampleRange` for the numeric
/// types the workspace uses.
pub trait UniformSampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl UniformSampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl UniformSampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_range {
    ($($t:ty),*) => {$(
        impl UniformSampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard.sample(rng); // [0, 1)
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }

        impl UniformSampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u: $t = Standard.sample(rng);
                start + (end - start) * u
            }
        }
    )*};
}

uniform_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let x: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            let y: f32 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = (0usize..10).sample_single(&mut rng);
            seen[v] = true;
            let w = (-3isize..=3).sample_single(&mut rng);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..10 should be hit");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = (-2.0f32..2.0).sample_single(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn bool_rate_is_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| Standard.sample::<StdRng>(&mut rng)).count();
        assert!((3_000..7_000).contains(&trues), "{trues} trues out of 10000");
    }
}
