//! **Tab. 7** — Quantization-aware training accuracies.
//!
//! Clean Err across precisions (`m ∈ {8, 4, 3, 2}`; the paper trains
//! `m ≤ 4` with clipping 0.1), float baselines, and the architecture /
//! normalization comparison (SimpleNet vs ResNet, GroupNorm vs BatchNorm).

use bitrobust_core::{ArchKind, NormKind, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{dataset_pair, pct, zoo_model, DatasetKind, ExpOptions, Table};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);

    // Precision sweep.
    let mut table = Table::new(&["precision m", "method", "Err %"]);
    let float_spec = {
        let mut s = ZooSpec::new(DatasetKind::Cifar10, None, TrainMethod::Normal);
        s.epochs = opts.epochs(s.epochs);
        s.seed = opts.seed;
        s
    };
    let (_m, float_report) = zoo_model(&float_spec, &train_ds, &test_ds, opts.no_cache);
    table.row_owned(vec!["float".into(), "NORMAL".into(), pct(float_report.clean_error as f64)]);
    for (m, method, label) in [
        (8u8, TrainMethod::Normal, "RQUANT"),
        (4, TrainMethod::Clipping { wmax: 0.1 }, "CLIPPING 0.1"),
        (3, TrainMethod::Clipping { wmax: 0.1 }, "CLIPPING 0.1"),
        (2, TrainMethod::Clipping { wmax: 0.1 }, "CLIPPING 0.1"),
    ] {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(QuantScheme::rquant(m)), method);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (_, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        table.row_owned(vec![format!("{m}"), label.into(), pct(report.clean_error as f64)]);
    }
    println!("Tab. 7 (left) — precision sweep on the CIFAR10 stand-in:\n{}", table.render());

    // Architecture / normalization comparison, m = 8.
    let mut table = Table::new(&["architecture", "norm", "Err %"]);
    for (arch, arch_name) in
        [(ArchKind::SimpleNet, "simplenet"), (ArchKind::ResNetMini, "resnet-mini")]
    {
        for (norm, norm_name) in [(NormKind::Group, "GN"), (NormKind::Batch, "BN")] {
            let mut spec = ZooSpec::new(
                DatasetKind::Cifar10,
                Some(QuantScheme::rquant(8)),
                TrainMethod::Normal,
            );
            spec.arch = arch;
            spec.norm = norm;
            spec.epochs = opts.epochs(spec.epochs);
            spec.seed = opts.seed;
            let (_, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
            table.row_owned(vec![
                arch_name.into(),
                norm_name.into(),
                pct(report.clean_error as f64),
            ]);
        }
    }
    println!("Tab. 7 (right) — architecture comparison (m = 8):\n{}", table.render());

    // CIFAR100 stand-in: default vs wide model.
    let (train100, test100) = dataset_pair(DatasetKind::Cifar100, opts.seed);
    let mut table = Table::new(&["model", "Err %"]);
    for (arch, name) in
        [(ArchKind::SimpleNet, "simplenet"), (ArchKind::WideSimpleNet, "wide (WRN sub)")]
    {
        let mut spec =
            ZooSpec::new(DatasetKind::Cifar100, Some(QuantScheme::rquant(8)), TrainMethod::Normal);
        spec.arch = arch;
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (_, report) = zoo_model(&spec, &train100, &test100, opts.no_cache);
        table.row_owned(vec![name.into(), pct(report.clean_error as f64)]);
    }
    println!("Tab. 7 — CIFAR100 stand-in:\n{}", table.render());
    println!("Expected shape (paper): m=8/4 match float closely, m=3/2 lose 1-2%;");
    println!("BN beats GN slightly on clean Err (but loses badly on robustness, Tab. 10);");
    println!("the wider model wins on CIFAR100.");
}
