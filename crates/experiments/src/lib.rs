//! # bitrobust-experiments
//!
//! Shared infrastructure for the per-table / per-figure reproduction
//! binaries (see `DESIGN.md` §5 for the experiment index): a disk-backed
//! zoo of trained models, glue for the durable sweep orchestrator
//! ([`sweeps`]), table formatting helpers, and the common command-line
//! options.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod protocol;
pub mod sweeps;
pub mod table;
pub mod zoo;

pub use cli::ExpOptions;

/// Flushes observability output at end-of-run: writes `OBS_report.json`
/// (and, at trace level, the Chrome trace) and prints where they landed.
/// A no-op when obs is off; a write failure warns but never fails the
/// experiment — observability must not cost results.
pub fn finish_obs() {
    match bitrobust_obs::finish() {
        Ok(paths) => {
            for path in paths {
                println!("obs output written to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: failed to write obs output: {e}"),
    }
}
pub use protocol::{
    p_grid_cifar, p_grid_cifar100, p_grid_mnist, progress_dots, protocol_axis, protocol_grid,
    rerr_sweep, rerr_sweep_streaming, CHIP_SEED,
};
pub use sweeps::{open_sweep_store, sweep_dir, sweep_models, sweep_progress};
pub use table::{pct, pct_pm, Table};
pub use zoo::{dataset_pair, warm_zoo, zoo_model, DatasetKind, ZooSpec};
