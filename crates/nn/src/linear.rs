//! Fully connected layer.

use bitrobust_tensor::{matmul, matmul_nt, matmul_tn_accumulate, Tensor};
use rand::Rng;

use crate::{init, Layer, Mode, Param, ParamKind};

/// A fully connected layer `y = x · Wᵀ + b` with `W: [out, in]`.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::{Layer, Linear, Mode};
/// use bitrobust_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(8, 4, &mut rng);
/// let x = Tensor::zeros(&[2, 8]);
/// let y = fc.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 4]);
/// ```
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    input_cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with He-initialized weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: Param::new(
                "weight",
                ParamKind::Weight,
                init::he_linear(out_features, in_features, rng),
            ),
            bias: Param::new("bias", ParamKind::Bias, Tensor::zeros(&[out_features])),
            input_cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value().dim(1)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value().dim(0)
    }

    /// The cache-free forward computation shared by `forward` and `infer`.
    fn compute(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "Linear expects [batch, features]");
        assert_eq!(input.dim(1), self.in_features(), "Linear input feature mismatch");
        let mut out = matmul_nt(input, self.weight.value());
        let (batch, out_f) = (out.dim(0), out.dim(1));
        let bias = self.bias.value().data();
        let data = out.data_mut();
        for b in 0..batch {
            for (o, &bias_v) in bias.iter().enumerate().take(out_f) {
                data[b * out_f + o] += bias_v;
            }
        }
        out
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.input_cache = Some(input.clone());
        }
        self.compute(input)
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        self.compute(input)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self { weight: self.weight.clone(), bias: self.bias.clone(), input_cache: None })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input_cache.as_ref().expect("backward before training forward");
        // dW += dYᵀ · X  with dY: [B, out], X: [B, in]  ->  [out, in],
        // accumulated straight into the gradient buffer (no temporary).
        let (batch_b, out_f_b, in_f) = (grad_output.dim(0), grad_output.dim(1), input.dim(1));
        matmul_tn_accumulate(
            self.weight.grad_mut().data_mut(),
            grad_output.data(),
            input.data(),
            out_f_b,
            batch_b,
            in_f,
        );
        // db += column sums of dY
        let (batch, out_f) = (grad_output.dim(0), grad_output.dim(1));
        {
            let db = self.bias.grad_mut().data_mut();
            let g = grad_output.data();
            for b in 0..batch {
                for (o, db_v) in db.iter_mut().enumerate().take(out_f) {
                    *db_v += g[b * out_f + o];
                }
            }
        }
        // dX = dY · W
        matmul(grad_output, self.weight.value())
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "Linear"
    }

    fn clear_cache(&mut self) {
        self.input_cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradients, GradCheckConfig};
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut fc = Linear::new(3, 2, &mut rng);
        fc.weight.value_mut().data_mut().copy_from_slice(&[1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        fc.bias.value_mut().data_mut().copy_from_slice(&[0.1, -0.1]);
        let x = Tensor::from_vec(vec![1, 3], vec![2.0, 4.0, 6.0]);
        let y = fc.forward(&x, Mode::Eval);
        assert!((y.at(&[0, 0]) - (2.0 - 6.0 + 0.1)).abs() < 1e-6);
        assert!((y.at(&[0, 1]) - (6.0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut fc = Linear::new(5, 3, &mut rng);
        check_layer_gradients(&mut fc, &[2, 5], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn grads_accumulate_across_backward_calls() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut fc = Linear::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]);
        let g = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]);
        let _ = fc.forward(&x, Mode::Train);
        let _ = fc.backward(&g);
        let after_one = fc.bias.grad().sum();
        let _ = fc.forward(&x, Mode::Train);
        let _ = fc.backward(&g);
        assert!((fc.bias.grad().sum() - 2.0 * after_one).abs() < 1e-6);
    }
}
