//! **Tab. 2 / Tab. 9** — Weight clipping improves robustness; label
//! smoothing destroys the effect.
//!
//! Trains `CLIPPING` models across `wmax` with and without label smoothing
//! and reports clean Err, clean confidence, confidence under `p = 1%` bit
//! errors, and RErr at `p ∈ {0.1%, 1%}`.

use bitrobust_core::{robust_eval_uniform, TrainMethod, EVAL_BATCH};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, pct_pm, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED,
};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);

    let configs: Vec<(String, TrainMethod, Option<f32>)> = vec![
        ("RQUANT".into(), TrainMethod::Normal, None),
        ("CLIPPING 0.15".into(), TrainMethod::Clipping { wmax: 0.15 }, None),
        ("CLIPPING 0.1".into(), TrainMethod::Clipping { wmax: 0.1 }, None),
        ("CLIPPING 0.05".into(), TrainMethod::Clipping { wmax: 0.05 }, None),
        ("CLIPPING 0.025".into(), TrainMethod::Clipping { wmax: 0.025 }, None),
        ("CLIPPING 0.15 +LS".into(), TrainMethod::Clipping { wmax: 0.15 }, Some(0.9)),
        ("CLIPPING 0.1 +LS".into(), TrainMethod::Clipping { wmax: 0.1 }, Some(0.9)),
        ("CLIPPING 0.05 +LS".into(), TrainMethod::Clipping { wmax: 0.05 }, Some(0.9)),
    ];

    let mut table =
        Table::new(&["model", "Err %", "Conf %", "Conf p=1%", "RErr p=0.1%", "RErr p=1%"]);
    for (name, method, ls) in configs {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.label_smoothing = ls;
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        let r_small = robust_eval_uniform(
            &model,
            scheme,
            &test_ds,
            1e-3,
            opts.chips,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        let r_large = robust_eval_uniform(
            &model,
            scheme,
            &test_ds,
            1e-2,
            opts.chips,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        table.row_owned(vec![
            name,
            pct(report.clean_error as f64),
            pct(report.clean_confidence as f64),
            pct(r_large.mean_confidence as f64),
            pct_pm(r_small.mean_error as f64, r_small.std_error as f64),
            pct_pm(r_large.mean_error as f64, r_large.std_error as f64),
        ]);
    }
    println!("Tab. 2 (CIFAR10 stand-in, m = 8 bit):\n{}", table.render());
    println!("Expected shape (paper): smaller wmax -> higher Err but much lower RErr;");
    println!("label smoothing keeps Err but loses the robustness gain (confidence pressure is");
    println!("what makes clipping work).");
}
