//! A pass-through layer recording activation statistics (for the paper's
//! redundancy analysis, Fig. 6 / Fig. 10).

use std::sync::{Arc, Mutex};

use bitrobust_nn::{Layer, Mode};
use bitrobust_tensor::Tensor;

/// Statistics captured by an [`ActivationProbe`] on its most recent forward.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProbeStats {
    /// Fraction of strictly positive activations ("ReLU relevance" in
    /// Fig. 10: how many units the network actually uses).
    pub fraction_positive: f64,
    /// Mean absolute activation.
    pub mean_abs: f64,
    /// Number of activations observed.
    pub count: usize,
}

/// Shared handle to a probe's latest statistics.
pub type ProbeHandle = Arc<Mutex<ProbeStats>>;

/// Identity layer that records [`ProbeStats`] about its input on every
/// forward pass.
///
/// The architecture builders place one after the final ReLU so experiments
/// can measure how many units a trained network relies on — the mechanism
/// behind weight clipping's robustness (Sec. 4.2).
#[derive(Debug)]
pub struct ActivationProbe {
    stats: ProbeHandle,
}

impl ActivationProbe {
    /// Creates a probe and returns it with its stats handle.
    pub fn new() -> (Self, ProbeHandle) {
        let stats: ProbeHandle = Arc::new(Mutex::new(ProbeStats::default()));
        (Self { stats: Arc::clone(&stats) }, stats)
    }
}

impl ActivationProbe {
    /// Records this input's statistics into the shared handle.
    fn record(&self, input: &Tensor) {
        let n = input.numel();
        if n > 0 {
            let positive = input.data().iter().filter(|&&v| v > 0.0).count();
            let mean_abs = input.data().iter().map(|v| v.abs() as f64).sum::<f64>() / n as f64;
            *self.stats.lock().expect("probe mutex poisoned") =
                ProbeStats { fraction_positive: positive as f64 / n as f64, mean_abs, count: n };
        }
    }
}

impl Layer for ActivationProbe {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.record(input);
        input.clone()
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        self.record(input);
        input.clone()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // The clone gets a *detached* stats handle. Campaign replicas run
        // concurrently; if they shared the original handle, the surviving
        // value would depend on scheduling, breaking the repo's
        // every-number-reproducible-from-seed guarantee. Probe consumers
        // populate stats with an explicit serial pass (e.g. `evaluate`) on
        // the model that owns the handle.
        Box::new(Self { stats: Arc::new(Mutex::new(ProbeStats::default())) })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.clone()
    }

    fn layer_type(&self) -> &'static str {
        "ActivationProbe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fraction_positive() {
        let (mut probe, handle) = ActivationProbe::new();
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, -1.0, 2.0, 0.0]);
        let y = probe.forward(&x, Mode::Eval);
        assert_eq!(y, x);
        let stats = *handle.lock().unwrap();
        assert_eq!(stats.fraction_positive, 0.5);
        assert_eq!(stats.mean_abs, 1.0);
        assert_eq!(stats.count, 4);
    }

    #[test]
    fn backward_is_identity() {
        let (mut probe, _) = ActivationProbe::new();
        let g = Tensor::from_vec(vec![2], vec![3.0, -4.0]);
        assert_eq!(probe.backward(&g), g);
    }
}
