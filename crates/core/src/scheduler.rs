//! The reusable fork-join scheduler behind campaigns, sweeps, training,
//! and serving.
//!
//! This module is the campaign engine's executor, extracted so every
//! batch-parallel subsystem shares one scheduling substrate instead of
//! re-implementing it:
//!
//! * the fault-injection **campaign engine** ([`crate::campaign`]) fans
//!   `(pattern, batch)` work items through [`execute`];
//! * the durable **sweep orchestrator** ([`crate::sweep`]) flattens whole
//!   multi-model plans into the same fan-out;
//! * **data-parallel training** ([`crate::data_parallel`]) runs its
//!   per-shard forward/backward passes as a `shards × 1` grid;
//! * the **inference service** (`bitrobust-serve`) executes each round of
//!   coalesced micro-batches as independent work items.
//!
//! # Execution model
//!
//! Work is an `n_tracks × n_slots` grid of *independent* units: a track is
//! one logical stream (an error pattern's replica, a training shard, a
//! served micro-batch) and a slot is one unit within it (a test batch, the
//! shard's single pass). [`execute`] fans items over the
//! `bitrobust-tensor` thread pool, writes every unit's result to its own
//! dedicated slot (no shared accumulators), and returns the full grid in
//! `(track, slot)` order so callers can reduce serially.
//!
//! # Determinism contract
//!
//! Scheduling never changes bytes. [`ItemSizing`] only decides *which
//! worker computes which slots*; the per-slot values and the caller's
//! serial reduction over them are identical regardless of thread count,
//! sizing, or claim order — [`execute_serial`] is the in-order reference
//! that pins this, and the core determinism suite runs both paths at
//! `BITROBUST_THREADS=1/2/max`.
//!
//! # Persistent replicas
//!
//! Fan-outs that need per-track model state used to clone the template
//! model every pass. Two small pools make those clones persistent:
//!
//! * [`ReplicaPool`] — read-shared replicas for evaluation campaigns: a
//!   slot is recloned only when its source template changes; otherwise the
//!   next wave's fault pattern is written over the previous one (every
//!   parameter tensor is overwritten, so reuse is byte-identical to a
//!   fresh clone).
//! * [`ShardReplicas`] — exclusive per-shard replicas for training: the
//!   structural clone happens once, and each pass re-syncs parameters
//!   bit-exactly instead of rebuilding the whole layer tree.

use std::sync::{Mutex, OnceLock};

use bitrobust_nn::Model;
// analyze:allow(det-thread-count, imported for work distribution only; every sizing below is byte-safe)
use bitrobust_tensor::{parallel_for, pool_parallelism};

/// Upper bound on model replicas alive in one fan-out wave. Campaigns with
/// more patterns run in chunks of this size, so peak memory is
/// `MAX_REPLICAS x model size` regardless of grid size.
pub const MAX_REPLICAS: usize = 64;

/// Work-item granularity of a scheduler fan-out.
///
/// Both sizings produce **byte-identical results**: sizing only decides
/// which worker computes which per-`(track, slot)` partials; the partials
/// themselves and the serial reduction over them are identical regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemSizing {
    /// One `(track, slot)` pair per work item — maximum load balance, and
    /// the historical granularity the campaign engine shipped with.
    PerBatch,
    /// Merge runs of contiguous slots of one track into a single work item
    /// when the per-slot item count far exceeds the pool parallelism
    /// ([`bitrobust_tensor::pool_parallelism`]), trading a little balance
    /// for much less scheduling overhead on track-heavy fan-outs (e.g. 50
    /// chips × 8 rates). Falls back to per-slot items when work is scarce.
    Adaptive,
}

/// Adaptive sizing aims for this many work items per hardware thread, so
/// the pool's self-scheduling can still balance uneven slot costs.
const ADAPTIVE_OVERSUBSCRIPTION: usize = 4;

/// Number of consecutive slots of one track each work item covers.
pub(crate) fn slots_per_item(sizing: ItemSizing, n_tracks: usize, n_slots: usize) -> usize {
    match sizing {
        ItemSizing::PerBatch => 1,
        ItemSizing::Adaptive => {
            let total = n_tracks * n_slots;
            // analyze:allow(det-thread-count, sizes work items only; partials and their serial reduction are thread-count independent)
            let target = (pool_parallelism() * ADAPTIVE_OVERSUBSCRIPTION).max(1);
            (total / target).clamp(1, n_slots.max(1))
        }
    }
}

/// Slots (cells, patterns) per streaming wave: small enough for frequent
/// progress delivery, large enough (≥ two work items per hardware thread)
/// to keep every core busy. `n_slots` is the number of slots each track
/// contributes (e.g. test batches per pattern).
pub fn wave_size(n_slots: usize) -> usize {
    // analyze:allow(det-thread-count, wave size batches delivery; per-slot results are computed and reduced identically at any size)
    (2 * pool_parallelism()).div_ceil(n_slots.max(1)).clamp(1, MAX_REPLICAS)
}

/// Fans an `n_tracks × n_slots` grid of independent work units over the
/// thread pool and returns every unit's result in `(track, slot)`
/// row-major order.
///
/// Work items are runs of consecutive slots of one track (per `sizing`);
/// every unit's result is written to its own dedicated slot, so results
/// are independent of thread count, scheduling, *and* work-item sizing —
/// bit-identical to [`execute_serial`].
///
/// # Panics
///
/// Panics if a slot is computed twice or never (both indicate a scheduler
/// bug, not a caller error).
pub fn execute<T, F>(n_tracks: usize, n_slots: usize, sizing: ItemSizing, work: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize, usize) -> T + Sync,
{
    execute_tracked(
        n_tracks,
        n_slots,
        sizing,
        |_| (),
        |_, track, slot| work(track, slot),
        |_, _| (),
    )
}

/// [`execute`] with a per-work-item context: `init(track)` runs once as a
/// worker claims an item (a run of consecutive slots of one track), every
/// unit of the item computes through `work(&mut ctx, track, slot)`, and
/// `done(track, ctx)` releases the context when the item completes.
///
/// This is how fan-outs thread expensive per-track state (e.g. a model
/// replica checked out of a [`ScratchReplicas`] pool) through the scheduler
/// without keeping one instance per track alive: live contexts are bounded
/// by the number of concurrently claimed items, not by `n_tracks`.
///
/// The determinism contract is unchanged — contexts only carry state the
/// caller guarantees is equivalent for every item of a track, so results
/// stay bit-identical to [`execute_serial`] regardless of sizing or
/// scheduling.
///
/// # Panics
///
/// As [`execute`].
pub fn execute_tracked<C, T, I, F, D>(
    n_tracks: usize,
    n_slots: usize,
    sizing: ItemSizing,
    init: I,
    work: F,
    done: D,
) -> Vec<T>
where
    T: Send + Sync,
    I: Fn(usize) -> C + Sync,
    F: Fn(&mut C, usize, usize) -> T + Sync,
    D: Fn(usize, C) + Sync,
{
    if n_tracks == 0 || n_slots == 0 {
        return Vec::new();
    }
    let group = slots_per_item(sizing, n_tracks, n_slots);
    let groups_per_track = n_slots.div_ceil(group);
    // Observability only: timings and counts are recorded, never read
    // back — results stay a function of inputs and seeds alone.
    bitrobust_obs::span!("scheduler.execute");
    bitrobust_obs::counter_add("scheduler.items", (n_tracks * groups_per_track) as u64);
    bitrobust_obs::counter_add("scheduler.slots", (n_tracks * n_slots) as u64);
    bitrobust_obs::record("scheduler.slots_per_item", group as u64);
    let partials: Vec<OnceLock<T>> = (0..n_tracks * n_slots).map(|_| OnceLock::new()).collect();
    parallel_for(n_tracks * groups_per_track, |item| {
        let track = item / groups_per_track;
        let first = (item % groups_per_track) * group;
        let last = (first + group).min(n_slots);
        let mut ctx = init(track);
        for slot in first..last {
            let value = work(&mut ctx, track, slot);
            let index = track * n_slots + slot;
            assert!(partials[index].set(value).is_ok(), "scheduler slot {index} visited twice");
        }
        done(track, ctx);
    });
    partials
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.into_inner().unwrap_or_else(|| panic!("missing partial {i}")))
        .collect()
}

/// The in-order serial reference of [`execute`]: every `(track, slot)`
/// unit on the calling thread, track-major. Bit-identical results; exists
/// for serial reference paths and the determinism suite.
pub fn execute_serial<T>(
    n_tracks: usize,
    n_slots: usize,
    mut work: impl FnMut(usize, usize) -> T,
) -> Vec<T> {
    let mut out = Vec::with_capacity(n_tracks * n_slots);
    for track in 0..n_tracks {
        for slot in 0..n_slots {
            out.push(work(track, slot));
        }
    }
    out
}

/// Persistent, read-shared model replicas for evaluation fan-outs.
///
/// A campaign wave needs one immutable [`Model`] per error pattern:
/// historically each wave cloned the template model per pattern, paying a
/// full layer-tree rebuild every wave. The pool keeps slot replicas alive
/// across waves ("passes") and re-clones a slot **only when its source
/// template changes** (multi-model sweeps interleave templates); otherwise
/// the next pattern's weights are simply written over the previous ones.
///
/// Reuse is byte-identical to fresh clones because the per-wave `setup`
/// callback (e.g. [`crate::QuantizedModel::write_to`]) overwrites every
/// parameter tensor, and evaluation via [`Model::infer`] reads nothing
/// else a previous wave could have touched (caches and probes stay
/// detached, gradients are never read). Scheduling never changes bytes.
#[derive(Debug, Default)]
pub struct ReplicaPool {
    /// `(source id, replica)` per slot; the id records which template the
    /// replica was cloned from, so template changes force a re-clone.
    slots: Vec<(usize, Model)>,
}

impl ReplicaPool {
    /// An empty pool; replicas are cloned on first [`ReplicaPool::prepare`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live replica slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool holds no replicas yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Readies slots `0..n` for the next wave: `source(i)` names slot
    /// `i`'s template (a stable id plus the model), and `setup(i, replica)`
    /// writes the slot's per-wave state (typically a fault pattern's
    /// weights). Slots whose source id is unchanged reuse their existing
    /// replica; the rest are cloned fresh from their template.
    pub fn prepare<'t>(
        &mut self,
        n: usize,
        source: impl Fn(usize) -> (usize, &'t Model),
        mut setup: impl FnMut(usize, &mut Model),
    ) {
        for i in 0..n {
            let (id, template) = source(i);
            match self.slots.get_mut(i) {
                Some((current, replica)) if *current == id => {
                    bitrobust_obs::counter_add("scheduler.replica.reuse", 1);
                    setup(i, replica)
                }
                Some(slot) => {
                    bitrobust_obs::counter_add("scheduler.replica.clone", 1);
                    *slot = (id, template.clone());
                    setup(i, &mut slot.1);
                }
                None => {
                    bitrobust_obs::counter_add("scheduler.replica.clone", 1);
                    // Full assert: a gap in the slot grid would hand later
                    // waves the wrong replica, silently in release builds.
                    assert_eq!(i, self.slots.len(), "slot grid must grow densely");
                    self.slots.push((id, template.clone()));
                    setup(i, &mut self.slots[i].1);
                }
            }
        }
    }

    /// Shared read access to slot `i`'s replica (prepared this wave).
    ///
    /// # Panics
    ///
    /// Panics if slot `i` was not prepared.
    pub fn replica(&self, i: usize) -> &Model {
        &self.slots[i].1
    }
}

/// A checkout pool of scratch model replicas for shared-image campaigns.
///
/// Where [`ReplicaPool`] keeps one replica per wave pattern alive, this
/// pool keeps only as many `f32` replicas as there are concurrently
/// claimed work items (≈ the pool parallelism): a worker checks a replica
/// out at item start, writes its pattern's integer image over the
/// parameters, evaluates, and gives the replica back. Patterns themselves
/// then only ever exist as quantized images (~4× smaller than an `f32`
/// replica), so campaign memory no longer scales with the pattern count.
///
/// Slots are tagged with a `source` (template identity — mixing replicas
/// of different architectures is never allowed) and a `tag` (the pattern
/// last written), so a checkout that lands on a same-pattern slot can skip
/// the rewrite. Reuse is byte-identical to a fresh clone for the same
/// reason [`ReplicaPool`]'s is: the image write overwrites every parameter
/// tensor and evaluation reads nothing else.
#[derive(Debug, Default)]
pub struct ScratchReplicas {
    /// `(source id, pattern tag, replica)` for every parked replica.
    slots: Mutex<Vec<(usize, usize, Model)>>,
}

impl ScratchReplicas {
    /// An empty pool; replicas are cloned by callers on checkout miss.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parked replicas (checked-out ones are not counted).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("scratch replica lock poisoned").len()
    }

    /// Whether the pool holds no parked replicas.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks out a parked replica of template `source`, returning the
    /// pattern tag it was last written with and the replica itself — or
    /// `None` if no replica of that template is parked (the caller then
    /// clones its template fresh). Replicas of other sources are left
    /// parked for their own campaigns' items.
    pub fn checkout(&self, source: usize) -> Option<(usize, Model)> {
        let mut slots = self.slots.lock().expect("scratch replica lock poisoned");
        let Some(pos) = slots.iter().position(|(s, _, _)| *s == source) else {
            bitrobust_obs::counter_add("scheduler.replica.checkout_miss", 1);
            return None;
        };
        bitrobust_obs::counter_add("scheduler.replica.checkout_reuse", 1);
        let (_, tag, replica) = slots.swap_remove(pos);
        Some((tag, replica))
    }

    /// Parks a replica for later checkout: `tag` names the pattern whose
    /// weights it currently holds, so a same-pattern checkout can skip the
    /// image rewrite.
    pub fn give_back(&self, source: usize, tag: usize, replica: Model) {
        self.slots.lock().expect("scratch replica lock poisoned").push((source, tag, replica));
    }
}

/// Persistent, exclusively-owned model replicas for data-parallel
/// training shards.
///
/// Training needs one *mutable* replica per shard (forward caches and
/// gradient buffers are written every pass). Historically each pass cloned
/// the model per shard; this pool clones each shard's replica **once**
/// (structure, normalization state, parameter buffers) and lets every
/// subsequent pass re-sync just the parameter bits via
/// [`Model::set_param_tensors`] — an exact bit copy, so results are
/// byte-identical to fresh clones at any thread count.
///
/// Each shard index is claimed by exactly one worker per pass, so the
/// per-slot locks are uncontended; they exist to make exclusive access
/// safe without tying replicas to particular pool threads.
#[derive(Debug, Default)]
pub struct ShardReplicas {
    slots: Vec<Mutex<Model>>,
}

impl ShardReplicas {
    /// An empty pool; replicas are cloned on first [`ShardReplicas::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live shard replicas.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool holds no replicas yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Ensures at least `n` replicas exist, cloning missing ones from
    /// `template`. Existing replicas are left as-is: passes re-sync the
    /// parameter bits themselves (see [`ShardReplicas::with`]), which is
    /// what makes the one-time structural clone sufficient.
    pub fn ensure(&mut self, template: &Model, n: usize) {
        while self.slots.len() < n {
            self.slots.push(Mutex::new(template.clone()));
        }
    }

    /// Runs `f` with exclusive access to shard `slot`'s replica.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never [`ShardReplicas::ensure`]d.
    pub fn with<R>(&self, slot: usize, f: impl FnOnce(&mut Model) -> R) -> R {
        let mut replica = self.slots[slot].lock().expect("shard replica lock poisoned");
        f(&mut replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build, ArchKind, NormKind};
    use rand::SeedableRng;

    #[test]
    fn execute_covers_every_unit_in_order() {
        for (tracks, slots) in [(1, 1), (3, 5), (7, 2), (1, 17)] {
            for sizing in [ItemSizing::PerBatch, ItemSizing::Adaptive] {
                let parallel = execute(tracks, slots, sizing, |t, s| (t, s));
                let serial = execute_serial(tracks, slots, |t, s| (t, s));
                assert_eq!(parallel, serial, "tracks {tracks} slots {slots} {sizing:?}");
                assert_eq!(parallel.len(), tracks * slots);
            }
        }
    }

    #[test]
    fn execute_tracked_contexts_cover_items_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        for (tracks, slots) in [(1, 1), (3, 5), (7, 2)] {
            for sizing in [ItemSizing::PerBatch, ItemSizing::Adaptive] {
                let inits = AtomicUsize::new(0);
                let dones = AtomicUsize::new(0);
                let out = execute_tracked(
                    tracks,
                    slots,
                    sizing,
                    |track| {
                        inits.fetch_add(1, Ordering::Relaxed);
                        track * 100
                    },
                    |ctx, t, s| {
                        assert_eq!(*ctx, t * 100, "context must belong to the item's track");
                        (t, s)
                    },
                    |track, ctx| {
                        assert_eq!(ctx, track * 100);
                        dones.fetch_add(1, Ordering::Relaxed);
                    },
                );
                assert_eq!(out, execute_serial(tracks, slots, |t, s| (t, s)));
                // Every init is paired with a done; the item count depends
                // on sizing but contexts never leak.
                assert_eq!(inits.load(Ordering::Relaxed), dones.load(Ordering::Relaxed));
                assert!(inits.load(Ordering::Relaxed) >= tracks);
            }
        }
    }

    #[test]
    fn scratch_replicas_checkout_prefers_matching_source() {
        let model = tiny_model();
        let pool = ScratchReplicas::new();
        assert!(pool.is_empty());
        assert!(pool.checkout(0).is_none());

        pool.give_back(0, 42, model.clone());
        pool.give_back(1, 7, model.clone());
        assert_eq!(pool.len(), 2);

        // Source 0's replica comes back with its pattern tag; source 1's
        // stays parked.
        let (tag, replica) = pool.checkout(0).expect("source 0 parked");
        assert_eq!(tag, 42);
        assert_eq!(pool.len(), 1);
        assert!(pool.checkout(0).is_none(), "other sources must not be drained");
        pool.give_back(0, 43, replica);
        assert_eq!(pool.checkout(1).expect("source 1 parked").0, 7);
    }

    #[test]
    fn execute_empty_grid_is_empty() {
        assert!(execute(0, 5, ItemSizing::Adaptive, |_, _| 0u8).is_empty());
        assert!(execute(5, 0, ItemSizing::Adaptive, |_, _| 0u8).is_empty());
    }

    #[test]
    fn slots_per_item_bounds() {
        // PerBatch is always 1; adaptive stays within [1, n_slots].
        assert_eq!(slots_per_item(ItemSizing::PerBatch, 50, 100), 1);
        for (tracks, slots) in [(1, 1), (50, 8), (2, 1000)] {
            let g = slots_per_item(ItemSizing::Adaptive, tracks, slots);
            assert!((1..=slots).contains(&g), "tracks {tracks} slots {slots}: {g}");
        }
    }

    #[test]
    fn wave_size_is_positive_and_capped() {
        for slots in [0usize, 1, 8, 10_000] {
            let w = wave_size(slots);
            assert!((1..=MAX_REPLICAS).contains(&w), "slots {slots}: {w}");
        }
    }

    fn tiny_model() -> Model {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        build(ArchKind::Mlp, [1, 8, 8], 4, NormKind::Group, &mut rng).model
    }

    #[test]
    fn replica_pool_reuses_same_source_and_reclones_on_change() {
        let a = tiny_model();
        let b = tiny_model();
        let mut pool = ReplicaPool::new();

        pool.prepare(2, |_| (0, &a), |_, _| {});
        assert_eq!(pool.len(), 2);
        let first = pool.replica(0).param_tensors();
        assert_eq!(first, a.param_tensors());

        // Same source: replicas persist (setup sees the previous state).
        let mut saw_existing = false;
        pool.prepare(1, |_| (0, &a), |_, m| saw_existing = m.param_tensors() == first);
        assert!(saw_existing, "same-source slot must reuse its replica");

        // Different source id: the slot must be re-cloned from b.
        pool.prepare(1, |_| (1, &b), |_, _| {});
        assert_eq!(pool.replica(0).param_tensors(), b.param_tensors());
    }

    #[test]
    fn shard_replicas_sync_matches_fresh_clone_bit_for_bit() {
        let model = tiny_model();
        let mut pool = ShardReplicas::new();
        pool.ensure(&model, 3);
        assert_eq!(pool.len(), 3);

        // Dirty a replica, then re-sync parameters the way a training pass
        // does; the result must equal a fresh clone's parameters exactly.
        let params = model.param_tensors();
        pool.with(1, |replica| {
            replica.clip_params(0.001);
            replica.set_param_tensors(&params);
            assert_eq!(replica.param_tensors(), params);
        });

        // ensure() never shrinks or re-clones existing slots.
        pool.ensure(&model, 2);
        assert_eq!(pool.len(), 3);
    }
}
