//! Spatial pooling layers.

use bitrobust_tensor::Tensor;

use crate::{Layer, Mode};

/// Max pooling over `[batch, ch, h, w]`.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::{Layer, MaxPool2d, Mode};
/// use bitrobust_tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2, 2);
/// let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
/// let y = pool.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[1, 1, 2, 2]);
/// assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    argmax: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        Self { kernel, stride, argmax: Vec::new(), input_shape: Vec::new() }
    }

    /// Pooling window size (square).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The cache-free pooling computation shared by `forward` and `infer`;
    /// returns the output plus the winning input index per output cell.
    fn compute(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        assert_eq!(input.ndim(), 4, "MaxPool2d expects [batch, ch, h, w]");
        let (batch, ch, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        assert!(h >= self.kernel && w >= self.kernel, "input smaller than pooling kernel");
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;

        let mut out = Tensor::zeros(&[batch, ch, oh, ow]);
        let mut argmax = vec![0usize; batch * ch * oh * ow];
        let x = input.data();
        let data = out.data_mut();
        for bc in 0..batch * ch {
            let x_plane = &x[bc * h * w..(bc + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            let ix = ox * self.stride + kx;
                            let idx = iy * w + ix;
                            if x_plane[idx] > best {
                                best = x_plane[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = (bc * oh + oy) * ow + ox;
                    data[o] = best;
                    argmax[o] = bc * h * w + best_idx;
                }
            }
        }
        (out, argmax)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (out, argmax) = self.compute(input);
        if mode.is_train() {
            self.argmax = argmax;
            self.input_shape = input.shape().to_vec();
        }
        out
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        self.compute(input).0
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self::new(self.kernel, self.stride))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.numel(),
            self.argmax.len(),
            "backward called without a matching training forward"
        );
        let mut dx = Tensor::zeros(&self.input_shape);
        let dxd = dx.data_mut();
        for (g, &src) in grad_output.data().iter().zip(&self.argmax) {
            dxd[src] += g;
        }
        dx
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "MaxPool2d"
    }

    fn clear_cache(&mut self) {
        self.argmax = Vec::new();
    }
}

/// Global average pooling: `[batch, ch, h, w]` → `[batch, ch]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl GlobalAvgPool {
    /// The cache-free pooling computation shared by `forward` and `infer`.
    fn compute(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "GlobalAvgPool expects [batch, ch, h, w]");
        let (batch, ch, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let hw = (h * w) as f32;
        let x = input.data();
        let mut out = Tensor::zeros(&[batch, ch]);
        let data = out.data_mut();
        for bc in 0..batch * ch {
            data[bc] = x[bc * h * w..(bc + 1) * h * w].iter().sum::<f32>() / hw;
        }
        out
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.input_shape = input.shape().to_vec();
        }
        self.compute(input)
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        self.compute(input)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (h, w) = (self.input_shape[2], self.input_shape[3]);
        let hw = h * w;
        let inv = 1.0 / hw as f32;
        let mut dx = Tensor::zeros(&self.input_shape);
        let dxd = dx.data_mut();
        for (bc, &g) in grad_output.data().iter().enumerate() {
            for v in &mut dxd[bc * hw..(bc + 1) * hw] {
                *v = g * inv;
            }
        }
        dx
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_and_backward_route_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        let g = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let dx = pool.backward(&g);
        assert_eq!(dx.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(dx.at(&[0, 0, 1, 3]), 2.0);
        assert_eq!(dx.at(&[0, 0, 3, 1]), 3.0);
        assert_eq!(dx.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn global_avg_pool_means_and_spreads() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let g = Tensor::from_vec(vec![1, 2], vec![4.0, 8.0]);
        let dx = pool.backward(&g);
        assert_eq!(dx.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(dx.at(&[0, 1, 1, 1]), 2.0);
    }

    #[test]
    fn maxpool_overlapping_window() {
        let mut pool = MaxPool2d::new(3, 2);
        let x = Tensor::from_fn(&[1, 1, 5, 5], |i| i as f32);
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 14.0, 22.0, 24.0]);
    }
}
