//! Energy/robustness trade-off analysis (combining Fig. 1 and Fig. 2).

use bitrobust_sram::{EnergyModel, VoltageErrorModel};

/// One operating point: a tolerated bit error rate, the voltage it permits,
/// the SRAM access energy saving, and the robust error paid for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Tolerated bit error rate.
    pub p: f64,
    /// Normalized operating voltage `V/Vmin`.
    pub voltage: f64,
    /// Relative SRAM access-energy saving vs operating at `Vmin`.
    pub energy_saving: f64,
    /// Robust test error at this rate, in `[0, 1]`.
    pub robust_error: f64,
}

/// Maps a measured `(p, RErr)` curve onto voltage and energy axes.
///
/// This is the computation behind the paper's headline claims ("~20% energy
/// saving within 1% accuracy", "30% at p = 1%"): each point of the RErr
/// curve of Fig. 2 is matched with the voltage/energy of Fig. 1.
pub fn energy_tradeoff(
    rerr_curve: &[(f64, f64)],
    volts: &VoltageErrorModel,
    energy: &EnergyModel,
) -> Vec<TradeoffPoint> {
    rerr_curve
        .iter()
        .map(|&(p, rerr)| {
            let voltage = if p > 0.0 { volts.voltage_for_rate(p) } else { 1.0 };
            TradeoffPoint {
                p,
                voltage,
                energy_saving: energy.saving_at(voltage),
                robust_error: rerr,
            }
        })
        .collect()
}

/// The largest energy saving achievable while keeping `RErr` within
/// `budget` of `clean_err` (both in `[0, 1]`). Returns `None` if no point
/// qualifies.
pub fn best_saving_within(
    points: &[TradeoffPoint],
    clean_err: f64,
    budget: f64,
) -> Option<TradeoffPoint> {
    points
        .iter()
        .filter(|pt| pt.robust_error <= clean_err + budget)
        .max_by(|a, b| a.energy_saving.total_cmp(&b.energy_saving))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (VoltageErrorModel, EnergyModel) {
        (VoltageErrorModel::chandramoorthy14nm(), EnergyModel::default())
    }

    #[test]
    fn tradeoff_is_monotone() {
        let (v, e) = models();
        let curve = [(1e-4, 0.05), (1e-3, 0.055), (1e-2, 0.07)];
        let pts = energy_tradeoff(&curve, &v, &e);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].voltage > pts[1].voltage && pts[1].voltage > pts[2].voltage);
        assert!(pts[0].energy_saving < pts[2].energy_saving);
    }

    #[test]
    fn zero_rate_maps_to_vmin() {
        let (v, e) = models();
        let pts = energy_tradeoff(&[(0.0, 0.04)], &v, &e);
        assert_eq!(pts[0].voltage, 1.0);
        assert!(pts[0].energy_saving.abs() < 1e-12);
    }

    #[test]
    fn best_saving_respects_budget() {
        let (v, e) = models();
        let curve = [(1e-4, 0.05), (1e-3, 0.06), (1e-2, 0.08), (2.5e-2, 0.30)];
        let pts = energy_tradeoff(&curve, &v, &e);
        let best = best_saving_within(&pts, 0.05, 0.03).unwrap();
        assert_eq!(best.p, 1e-2, "p=1% is the best point within a 3% budget");
        assert!(best_saving_within(&pts, 0.05, 0.001).unwrap().p < 1e-2);
    }

    #[test]
    fn no_point_within_budget_returns_none() {
        let (v, e) = models();
        let pts = energy_tradeoff(&[(1e-2, 0.5)], &v, &e);
        assert!(best_saving_within(&pts, 0.05, 0.01).is_none());
    }
}
