//! Property-based tests of the fixed-point quantization invariants.

use bitrobust_quant::{QuantScheme, Rounding};
use proptest::prelude::*;

fn weight_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, 1..200)
}

fn any_scheme() -> impl Strategy<Value = QuantScheme> {
    (prop::sample::select(vec![2u8, 3, 4, 8]), 0..5usize).prop_map(|(bits, which)| match which {
        0 => QuantScheme::normal(bits),
        1 => QuantScheme::rquant(bits),
        2 => QuantScheme::symmetric(bits),
        3 => QuantScheme::asymmetric_signed(bits),
        _ => QuantScheme::asymmetric_unsigned(bits),
    })
}

proptest! {
    /// The reconstruction error is bounded by the quantization step:
    /// Δ/2 for rounding, Δ for truncation.
    #[test]
    fn round_trip_error_is_bounded(weights in weight_vec(), scheme in any_scheme()) {
        let q = scheme.quantize(&weights);
        let back = q.dequantize();
        let range = scheme.range_for(&weights);
        let delta = range.span() / (2.0 * scheme.max_level() as f32);
        let bound = match scheme.rounding {
            Rounding::Nearest => 0.5 * delta,
            Rounding::Truncate => delta,
        } + 1e-5 + range.span() * 1e-6;
        for (w, b) in weights.iter().zip(&back) {
            prop_assert!((w - b).abs() <= bound,
                "{}: |{} - {}| > {}", scheme.describe(), w, b, bound);
        }
    }

    /// Only the low `m` bits are ever set in stored words.
    #[test]
    fn dead_bits_stay_zero(weights in weight_vec(), scheme in any_scheme()) {
        let q = scheme.quantize(&weights);
        let dead = !scheme.live_mask();
        prop_assert!(q.words().iter().all(|&w| w & dead == 0));
    }

    /// Quantization is idempotent under rounding: re-quantizing the
    /// dequantized weights reproduces the same words.
    #[test]
    fn requantization_is_idempotent_for_rounding(weights in weight_vec()) {
        for bits in [2u8, 4, 8] {
            let scheme = QuantScheme::rquant(bits);
            let q1 = scheme.quantize(&weights);
            let back = q1.dequantize();
            let q2 = scheme.quantize_with_range(&back, q1.range());
            prop_assert_eq!(q1.hamming_distance(&q2), 0);
        }
    }

    /// Dequantized values are monotone in the stored level (unsigned repr):
    /// a numerically larger word decodes to a larger weight.
    #[test]
    fn unsigned_decoding_is_monotone(lo in -2.0f32..0.0, span in 0.1f32..2.0) {
        let scheme = QuantScheme::rquant(8);
        let range = bitrobust_quant::QuantRange::new(lo, lo + span);
        let mut last = f32::NEG_INFINITY;
        for word in 0u8..=255 {
            let v = scheme.dequantize_word(word, range);
            prop_assert!(v >= last, "word {} decodes to {} < {}", word, v, last);
            last = v;
        }
    }

    /// A single bit flip always changes the decoded value by a power of two
    /// times the step (unsigned representation).
    #[test]
    fn flip_magnitude_is_a_power_of_two_steps(weights in weight_vec(), bit in 0u8..8) {
        let scheme = QuantScheme::rquant(8);
        let q = scheme.quantize(&weights);
        let range = q.range();
        let delta = range.span() / (2.0 * scheme.max_level() as f32);
        let word = q.words()[0];
        let flipped = word ^ (1 << bit);
        let before = scheme.dequantize_word(word, range);
        let after = scheme.dequantize_word(flipped, range);
        let expected = delta * (1u32 << bit) as f32;
        prop_assert!(((after - before).abs() - expected).abs() <= expected * 1e-3 + 1e-6);
    }

    /// The derived range always contains every weight.
    #[test]
    fn range_contains_all_weights(weights in weight_vec(), scheme in any_scheme()) {
        let range = scheme.range_for(&weights);
        for &w in &weights {
            prop_assert!(w >= range.lo() - 1e-6 && w <= range.hi() + 1e-6);
        }
    }
}
