//! # bitrobust-integration
//!
//! An umbrella crate that owns the repository-level `tests/` and
//! `examples/` directories (declared with explicit paths in this crate's
//! manifest, since the workspace root is a virtual manifest) and re-exports
//! every `bitrobust` crate under one roof for convenience:
//!
//! ```
//! use bitrobust_integration::quant::QuantScheme;
//!
//! let q = QuantScheme::rquant(8).quantize(&[0.1f32, -0.2]);
//! assert_eq!(q.words().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bitrobust_biterror as biterror;
pub use bitrobust_core as core;
pub use bitrobust_data as data;
pub use bitrobust_experiments as experiments;
pub use bitrobust_nn as nn;
pub use bitrobust_quant as quant;
pub use bitrobust_sram as sram;
pub use bitrobust_tensor as tensor;
