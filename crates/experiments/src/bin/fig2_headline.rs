//! **Fig. 2** — The headline result: RErr vs bit error rate for the
//! technique stack, with the energy savings each tolerated rate buys.
//!
//! `NORMAL → RQUANT → +CLIPPING → +RANDBET` at 8 bit, plus the best 4-bit
//! model, across the CIFAR bit error rate grid; the final table combines
//! the best curve with the Fig. 1 energy model to state the paper's
//! headline claims.

use bitrobust_core::{best_saving_within, energy_tradeoff, RandBetVariant, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, p_grid_cifar, pct, pct_pm, progress_dots, rerr_sweep_streaming, zoo_model,
    DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;
use bitrobust_sram::{EnergyModel, VoltageErrorModel};

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let ps = p_grid_cifar();

    let runs: Vec<(&str, QuantScheme, TrainMethod)> = vec![
        ("NORMAL 8bit", QuantScheme::normal(8), TrainMethod::Normal),
        ("RQUANT 8bit", QuantScheme::rquant(8), TrainMethod::Normal),
        ("+CLIPPING 0.1", QuantScheme::rquant(8), TrainMethod::Clipping { wmax: 0.1 }),
        (
            "+RANDBET p=1%",
            QuantScheme::rquant(8),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
        (
            "best 4bit (RANDBET)",
            QuantScheme::rquant(4),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
    ];

    let mut header = vec!["model".to_string(), "Err %".to_string()];
    header.extend(ps.iter().map(|p| format!("p={:.2}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let mut best_curve: Option<(f64, Vec<(f64, f64)>)> = None;
    for (name, scheme, method) in runs {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);
        // Stream the campaign: one dot per (rate, chip) cell as it lands.
        eprint!("sweep {name}: ");
        let sweep = rerr_sweep_streaming(
            &model,
            scheme,
            &test_ds,
            &ps,
            opts.chips,
            progress_dots(ps.len() * opts.chips),
        );
        let mut row = vec![name.to_string(), pct(report.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
        if name.contains("RANDBET") && scheme.bits() == 8 {
            let curve: Vec<(f64, f64)> =
                ps.iter().zip(&sweep).map(|(&p, r)| (p, r.mean_error as f64)).collect();
            best_curve = Some((report.clean_error as f64, curve));
        }
    }
    println!("Fig. 2 — RErr vs p (CIFAR10 stand-in):\n{}", table.render());

    if let Some((clean, curve)) = best_curve {
        let volts = VoltageErrorModel::chandramoorthy14nm();
        let energy = EnergyModel::default();
        let points = energy_tradeoff(&curve, &volts, &energy);
        let mut table = Table::new(&["p %", "V/Vmin", "energy saving %", "RErr %"]);
        for pt in &points {
            table.row_owned(vec![
                format!("{:.2}", 100.0 * pt.p),
                format!("{:.3}", pt.voltage),
                format!("{:.1}", 100.0 * pt.energy_saving),
                format!("{:.2}", 100.0 * pt.robust_error),
            ]);
        }
        println!("Energy trade-off of the 8-bit RANDBET model:\n{}", table.render());
        for budget in [0.01, 0.025] {
            match best_saving_within(&points, clean, budget) {
                Some(best) => println!(
                    "Within +{:.1}% RErr of clean ({:.2}%): p={:.2}% -> {:.1}% energy saving",
                    100.0 * budget,
                    100.0 * clean,
                    100.0 * best.p,
                    100.0 * best.energy_saving
                ),
                None => println!("No operating point within +{:.1}% of clean", 100.0 * budget),
            }
        }
        println!("\nPaper headline: <1% accuracy cost buys ~20% energy; ~2.5% cost buys ~30%.");
    }
}
