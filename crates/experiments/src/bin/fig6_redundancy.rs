//! **Fig. 6 / Fig. 10** — Why weight clipping works: redundancy.
//!
//! For `RQUANT`, `CLIPPING`, and `RANDBET` (without clipping) models:
//! clean vs perturbed confidence, weight-distribution redundancy metrics
//! (relative absolute error, weight relevance, zero/large weight
//! fractions), and the "ReLU relevance" measured by the activation probe.

use bitrobust_core::{
    evaluate, quantized_error_probed, redundancy_metrics, robust_eval_uniform, RandBetVariant,
    TrainMethod, EVAL_BATCH,
};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    dataset_pair, pct, zoo_model, DatasetKind, ExpOptions, Table, CHIP_SEED,
};
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (train_ds, test_ds) = dataset_pair(DatasetKind::Cifar10, opts.seed);
    let scheme = QuantScheme::rquant(8);
    let p = 0.01;

    let configs: Vec<(&str, TrainMethod)> = vec![
        ("RQUANT", TrainMethod::Normal),
        ("CLIPPING 0.1", TrainMethod::Clipping { wmax: 0.1 }),
        ("CLIPPING 0.05", TrainMethod::Clipping { wmax: 0.05 }),
        (
            "RANDBET p=1% (no clip)",
            TrainMethod::RandBet { wmax: None, p, variant: RandBetVariant::Standard },
        ),
    ];

    let mut table = Table::new(&[
        "model",
        "Err %",
        "Conf %",
        "Conf p=1%",
        "RErr p=1%",
        "rel abs err",
        "weight relevance",
        "zero frac",
        "ReLU relevance",
    ]);
    for (name, method) in configs {
        let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(scheme), method);
        spec.epochs = opts.epochs(spec.epochs);
        spec.seed = opts.seed;
        let (model, report) = zoo_model(&spec, &train_ds, &test_ds, opts.no_cache);

        let robust = robust_eval_uniform(
            &model,
            scheme,
            &test_ds,
            p,
            opts.chips,
            CHIP_SEED,
            EVAL_BATCH,
            Mode::Eval,
        );
        let red = redundancy_metrics(&model, scheme, p, opts.chips.min(5), CHIP_SEED);

        // ReLU relevance via a probe-equipped fresh forward: rebuild the
        // architecture, load the trained weights, run the test set.
        let relu_relevance = {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
            let built = bitrobust_core::build(
                spec.arch,
                spec.dataset.image_shape(),
                spec.dataset.n_classes(),
                spec.norm,
                &mut rng,
            );
            let mut probed = built.model;
            probed.set_param_tensors(&model.param_tensors());
            // The explicit serial probed pass: the parallel `quantized_error`
            // never touches probe state (campaign replicas are detached).
            let _ = quantized_error_probed(&mut probed, scheme, &test_ds, EVAL_BATCH, Mode::Eval);
            let fraction = built.probe.lock().unwrap().fraction_positive;
            fraction
        };
        let clean = evaluate(&model, &test_ds, EVAL_BATCH, Mode::Eval);
        let _ = clean;

        table.row_owned(vec![
            name.into(),
            pct(report.clean_error as f64),
            pct(report.clean_confidence as f64),
            pct(robust.mean_confidence as f64),
            pct(robust.mean_error as f64),
            format!("{:.4}", red.relative_abs_error),
            format!("{:.3}", red.weight_relevance),
            format!("{:.4}", red.fraction_zero),
            format!("{:.3}", relu_relevance),
        ]);
    }
    println!("Fig. 6 / Fig. 10 (CIFAR10 stand-in, m = 8 bit, p = 1%):\n{}", table.render());
    println!("Expected shape (paper): clipping keeps perturbed confidence close to clean,");
    println!("raises weight relevance (more weights doing work), and lowers the relative");
    println!("perturbation; RANDBET alone is less effective at preserving confidences.");
}
