//! End-to-end robust evaluation cost: quantize → inject → dequantize →
//! forward over a test set, per simulated chip.

use bitrobust_core::{build, robust_eval_uniform, ArchKind, NormKind, QuantizedModel};
use bitrobust_data::SynthDataset;
use bitrobust_nn::Mode;
use bitrobust_quant::QuantScheme;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn bench_robust_eval(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let (_, test_ds) = SynthDataset::Mnist.generate(0);

    let mut group = c.benchmark_group("robust_eval");
    group.sample_size(10);
    group.bench_function("mlp_1chip_1000ex", |b| {
        b.iter(|| {
            robust_eval_uniform(
                &mut model,
                QuantScheme::rquant(8),
                &test_ds,
                0.01,
                1,
                42,
                256,
                Mode::Eval,
            )
        })
    });
    group.bench_function("quantize_model", |b| {
        b.iter(|| QuantizedModel::quantize(&mut model, QuantScheme::rquant(8)))
    });
    group.finish();
}

criterion_group!(benches, bench_robust_eval);
criterion_main!(benches);
