//! Offline, API-compatible subset of
//! [`criterion`](https://crates.io/crates/criterion), vendored so the
//! workspace's `harness = false` benches build and run without network
//! access.
//!
//! The subset covers [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is deliberately simple: each
//! benchmark runs a warm-up pass plus `sample_size` timed batches and
//! reports the fastest batch's mean iteration time (a robust
//! minimum-of-means estimator). There is no HTML report, outlier analysis,
//! or statistical regression testing — swap in the real crate for those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size, throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix, throughput
/// setting, and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work per iteration, enabling a rate column.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (kept for API parity; reporting is per-bench).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Work performed per iteration, for deriving rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the best batch so far.
    best_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, keeping the fastest batch mean across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size batches so each batch takes ~1 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let mean = start.elapsed().as_nanos() as f64 / batch as f64;
        self.best_ns = Some(match self.best_ns {
            Some(best) => best.min(mean),
            None => mean,
        });
    }
}

fn run_benchmark<F>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    match bencher.best_ns {
        Some(ns) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!("  {:.1} Melem/s", n as f64 * 1e3 / ns),
                Throughput::Bytes(n) => {
                    format!("  {:.1} MiB/s", n as f64 * 1e9 / ns / (1 << 20) as f64)
                }
            });
            println!("{label:<48} {:>12}/iter{}", format_ns(ns), rate.unwrap_or_default());
        }
        None => println!("{label:<48} (no iterations recorded)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, with the same two
/// invocation forms as the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(name = smoke; config = Criterion::default().sample_size(2); targets = trivial);

    #[test]
    fn group_and_bencher_run() {
        smoke();
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4)).sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(0u8)));
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p0.1").id, "p0.1");
    }
}
