//! The layer abstraction used by every network in the workspace.

use bitrobust_tensor::Tensor;

use crate::Param;

/// Forward-pass mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: caches activations for backward, uses batch statistics, and
    /// updates running statistics in normalization layers.
    Train,
    /// Inference with accumulated statistics (the deployment configuration).
    Eval,
    /// Inference that recomputes normalization statistics from the current
    /// batch. Used to reproduce the paper's Tab. 10, which shows BatchNorm's
    /// accumulated statistics are what breaks under weight bit errors.
    EvalBatchStats,
}

impl Mode {
    /// Whether this mode caches intermediate state for a later backward pass.
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A differentiable layer with hand-written backprop.
///
/// Contract:
///
/// * `forward` in [`Mode::Train`] must cache whatever `backward` needs;
///   `backward` may only be called after a training-mode forward and consumes
///   that cache conceptually (calling it twice without a new forward is a
///   logic error, though layers are not required to detect it).
/// * `backward` receives `dL/d(output)` and returns `dL/d(input)`;
///   it **accumulates** parameter gradients (`+=`) so that multi-pass
///   training schemes (e.g. random bit error training, which averages a
///   clean and a perturbed gradient) work without extra buffers.
/// * `visit_params` yields parameters in a deterministic order; the order
///   defines the global parameter indexing used for quantization, bit error
///   injection offsets, and serialization.
pub trait Layer: Send {
    /// Computes the layer output.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates gradients; returns `dL/d(input)` and accumulates parameter
    /// gradients.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits all trainable parameters in deterministic order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// A short human-readable layer type name (e.g. `"Conv2d"`).
    fn layer_type(&self) -> &'static str;

    /// Releases cached activations to free memory (optional).
    fn clear_cache(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_train_detection() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
        assert!(!Mode::EvalBatchStats.is_train());
    }
}
