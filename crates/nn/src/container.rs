//! Layer composition: sequential chains, residual blocks, flattening.

use bitrobust_tensor::Tensor;

use crate::{Layer, Mode, Param};

/// A chain of layers applied in order.
///
/// # Examples
///
/// ```
/// use bitrobust_nn::{Layer, Linear, Mode, Relu, Sequential};
/// use bitrobust_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Linear::new(8, 2, &mut rng));
/// let y = net.forward(&Tensor::zeros(&[3, 4]), Mode::Eval);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.layer_type()).collect();
        f.debug_struct("Sequential").field("layers", &names).finish()
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the contained layers.
    pub fn layers(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(|b| b.as_ref())
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self { layers: self.layers.iter().map(|l| l.clone_layer()).collect() }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x, mode);
        }
        x
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params_ref(visitor);
        }
    }

    fn visit_children(&self, visitor: &mut dyn FnMut(&dyn Layer)) {
        for layer in &self.layers {
            visitor(layer.as_ref());
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "Sequential"
    }

    fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }
}

/// A residual block: `y = body(x) + shortcut(x)`.
///
/// The shortcut defaults to identity; set one (e.g. a strided 1×1
/// convolution) when the body changes shape.
pub struct Residual {
    body: Sequential,
    shortcut: Option<Box<dyn Layer>>,
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("body", &self.body)
            .field("has_shortcut", &self.shortcut.is_some())
            .finish()
    }
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(body: Sequential) -> Self {
        Self { body, shortcut: None }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(body: Sequential, shortcut: impl Layer + 'static) -> Self {
        Self { body, shortcut: Some(Box::new(shortcut)) }
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let branch = self.body.forward(input, mode);
        let skip = match &mut self.shortcut {
            Some(layer) => layer.forward(input, mode),
            None => input.clone(),
        };
        assert_eq!(
            branch.shape(),
            skip.shape(),
            "residual body and shortcut produced different shapes"
        );
        &branch + &skip
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        let branch = self.body.infer(input, mode);
        let skip = match &self.shortcut {
            Some(layer) => layer.infer(input, mode),
            None => input.clone(),
        };
        assert_eq!(
            branch.shape(),
            skip.shape(),
            "residual body and shortcut produced different shapes"
        );
        &branch + &skip
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self {
            body: self.body.clone(),
            shortcut: self.shortcut.as_ref().map(|l| l.clone_layer()),
        })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let through_body = self.body.backward(grad_output);
        let through_skip = match &mut self.shortcut {
            Some(layer) => layer.backward(grad_output),
            None => grad_output.clone(),
        };
        &through_body + &through_skip
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(visitor);
        if let Some(layer) = &mut self.shortcut {
            layer.visit_params(visitor);
        }
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Param)) {
        self.body.visit_params_ref(visitor);
        if let Some(layer) = &self.shortcut {
            layer.visit_params_ref(visitor);
        }
    }

    fn visit_children(&self, visitor: &mut dyn FnMut(&dyn Layer)) {
        visitor(&self.body);
        if let Some(layer) = &self.shortcut {
            visitor(layer.as_ref());
        }
    }

    fn layer_type(&self) -> &'static str {
        "Residual"
    }

    fn clear_cache(&mut self) {
        self.body.clear_cache();
        if let Some(layer) = &mut self.shortcut {
            layer.clear_cache();
        }
    }
}

/// Flattens `[batch, ...]` into `[batch, features]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert!(input.ndim() >= 2, "Flatten expects at least [batch, features]");
        let batch = input.dim(0);
        let features = input.numel() / batch;
        if mode.is_train() {
            self.input_shape = input.shape().to_vec();
        }
        input.clone().reshape(&[batch, features])
    }

    fn infer(&self, input: &Tensor, mode: Mode) -> Tensor {
        mode.assert_inference();
        assert!(input.ndim() >= 2, "Flatten expects at least [batch, features]");
        let batch = input.dim(0);
        let features = input.numel() / batch;
        input.clone().reshape(&[batch, features])
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.clone().reshape(&self.input_shape)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_gradients, GradCheckConfig};
    use crate::{Conv2d, Linear, Relu};
    use rand::SeedableRng;

    #[test]
    fn sequential_chains_and_backprops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Linear::new(4, 6, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(6, 3, &mut rng));
        check_layer_gradients(&mut net, &[2, 4], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn residual_identity_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 2, 3, 1, 1, &mut rng));
        body.push(Relu::new());
        let mut block = Residual::new(body);
        check_layer_gradients(&mut block, &[1, 2, 4, 4], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn residual_projection_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 4, 3, 2, 1, &mut rng));
        let shortcut = Conv2d::new(2, 4, 1, 2, 0, &mut rng);
        let mut block = Residual::with_shortcut(body, shortcut);
        check_layer_gradients(&mut block, &[1, 2, 4, 4], &GradCheckConfig::default(), &mut rng);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut flat = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = flat.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 12]);
        let dx = flat.backward(&y);
        assert_eq!(dx.shape(), &[2, 3, 2, 2]);
        assert_eq!(dx, x);
    }

    #[test]
    fn sequential_param_visit_order_is_stable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 3, &mut rng));
        net.push(Linear::new(3, 1, &mut rng));
        let mut names = Vec::new();
        net.visit_params(&mut |p| names.push(format!("{}{:?}", p.name(), p.value().shape())));
        assert_eq!(names, vec!["weight[3, 2]", "bias[3]", "weight[1, 3]", "bias[1]"]);
    }
}
