//! # bitrobust-tensor
//!
//! A minimal, dependency-light `f32` tensor library purpose-built for the
//! [`bitrobust`] workspace — the Rust reproduction of *"Bit Error Robustness
//! for Energy-Efficient DNN Accelerators"* (Stutz et al., MLSys 2021).
//!
//! The crate provides:
//!
//! * [`Tensor`] — a dense row-major `f32` tensor with the constructors,
//!   elementwise operations, and reductions the NN substrate needs;
//! * matrix kernels ([`matmul`], [`matmul_nt`], [`matmul_tn`]) in the exact
//!   layouts required by hand-written backprop, all routed through one
//!   packed, cache-blocked, register-tiled GEMM (see [`gemm`]) that absorbs
//!   transposition at pack time, so no transposes are ever materialized on
//!   the hot path;
//! * a persistent fork-join [`ThreadPool`] with [`parallel_for`] and
//!   [`parallel_for_disjoint_chunks`], used by the layers in `bitrobust-nn`
//!   for per-sample batch parallelism;
//! * a tiny binary serialization format ([`write_tensors`]/[`read_tensors`])
//!   for persisting trained models.
//!
//! # Examples
//!
//! ```
//! use bitrobust_tensor::{matmul, Tensor};
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 1.0, 0.0]);
//! let c = matmul(&a, &b);
//! assert_eq!(c.data(), &[2.0, 1.0, 4.0, 3.0]);
//! ```
//!
//! [`bitrobust`]: https://example.com/bitrobust/bitrobust

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cast;
pub mod gemm;
pub mod gemm_i8;
mod ops;
mod pool;
mod serialize;
mod tensor;

pub use gemm::GemmOperand;
pub use gemm_i8::{gemm_i8, GemmOperandI8};
pub use ops::{
    dot, matmul, matmul_accumulate, matmul_into, matmul_nt, matmul_nt_accumulate, matmul_nt_into,
    matmul_nt_reference, matmul_reference, matmul_tn, matmul_tn_accumulate, matmul_tn_into,
    matmul_tn_reference, softmax_rows, transpose,
};
pub use pool::{
    parallel_for, parallel_for_disjoint_chunks, pool_parallelism, ThreadPool, THREADS_ENV,
};
pub use serialize::{read_tensors, write_tensors};
pub use tensor::Tensor;
