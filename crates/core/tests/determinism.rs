//! Determinism suite for the batch-parallel evaluation surface.
//!
//! The invariant being pinned: **parallel == serial == seed**. Every
//! parallel path — clean `evaluate`, the campaign engine under both
//! work-item sizings, the streaming campaign, and the in-training RErr
//! probes — must produce byte-identical results to its serial reference,
//! and those results must be byte-identical across thread counts.
//!
//! The in-process tests check parallel-vs-serial at whatever thread count
//! this process runs with. The `thread_matrix` test re-executes this test
//! binary with `BITROBUST_THREADS` set to 1, 2, and the machine maximum
//! (the pool is sized once per process, so distinct counts need distinct
//! processes) — plus one run with `BITROBUST_OBS=trace`, pinning the obs
//! crate's bit-neutrality contract — and asserts the fingerprints printed
//! by the [`worker_fingerprints`] helper are identical across all runs.
//!
//! Since data-parallel training landed, the same discipline covers
//! `train()`: sharded training must be byte-identical to its in-order
//! serial shard reference ([`bitrobust_core::DataParallel::serial`]) —
//! losses, per-epoch RErr probes, *and* final weights — for every training
//! method, at every thread count.
//!
//! The sweep orchestrator extends it once more: profiled-chip axes must
//! match their serial reference with a pinned iteration order, and a
//! killed-and-resumed multi-model sweep's store must fingerprint
//! identically to a single-shot run's — again at 1, 2, and max threads.

use std::fmt::Write as _;

mod common;
use common::weights_fingerprint;

use bitrobust_core::{
    build, evaluate, evaluate_serial, run_axis, run_axis_streaming, run_grid, run_grid_streaming,
    train, ArchKind, Campaign, CampaignGrid, ChipAxis, DataParallel, EvalResult, ItemSizing,
    NormKind, PattPattern, QuantizedModel, RErrProbe, RandBetVariant, ReplicaStrategy, SweepStore,
    TrainConfig, TrainMethod, TrainReport, EVAL_BATCH,
};
use bitrobust_data::{AugmentConfig, Dataset, SynthDataset};
use bitrobust_nn::{Mode, Model};
use bitrobust_quant::QuantScheme;
use rand::SeedableRng;

fn tiny_setup() -> (Model, Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let (_, test) = SynthDataset::Mnist.generate(0);
    (built.model, test)
}

fn chip_images(model: &Model, n_chips: usize, p: f64) -> Vec<QuantizedModel> {
    use bitrobust_biterror::UniformChip;
    let q0 = QuantizedModel::quantize(model, QuantScheme::rquant(8));
    (0..n_chips)
        .map(|c| {
            let mut q = q0.clone();
            q.inject(&UniformChip::new(1000 + c as u64).at_rate(p));
            q
        })
        .collect()
}

fn mnist_subset() -> (Dataset, Dataset) {
    let (train_ds, test_ds) = SynthDataset::Mnist.generate(1);
    let train_idx: Vec<usize> = (0..600).collect();
    let test_idx: Vec<usize> = (0..300).collect();
    let (xt, yt) = train_ds.batch(&train_idx);
    let (xe, ye) = test_ds.batch(&test_idx);
    (Dataset::new("train", xt, yt, 10), Dataset::new("test", xe, ye, 10))
}

/// A short RandBET run with the per-epoch RErr probe enabled.
fn probed_training_report(serial_probe: bool) -> TrainReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let (train_ds, test_ds) = mnist_subset();
    let mut cfg = TrainConfig::new(
        Some(QuantScheme::rquant(8)),
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
    );
    cfg.epochs = 2;
    cfg.batch_size = 128;
    cfg.augment = AugmentConfig::none();
    cfg.warmup_loss = 100.0;
    cfg.rerr_probe = Some(RErrProbe { serial: serial_probe, ..RErrProbe::new(0.01, 2) });
    train(&mut model, &train_ds, &test_ds, &cfg)
}

/// The training methods the data-parallel determinism contract is pinned
/// over: all three bit-error training paths (Standard's summed gradients,
/// PattBET's fixed pattern, Alternating's two-phase update).
fn dp_methods() -> [TrainMethod; 3] {
    [
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        TrainMethod::PattBet {
            wmax: Some(0.1),
            pattern: PattPattern::Uniform { seed: 77, p: 0.01 },
        },
        TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Alternating },
    ]
}

/// A short data-parallel training run; returns the report and the trained
/// model so callers can compare weights byte-for-byte.
fn dp_training_run(method: TrainMethod, dp: DataParallel) -> (TrainReport, Model) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
    let mut model = built.model;
    let (train_ds, test_ds) = mnist_subset();
    let mut cfg = TrainConfig::new(Some(QuantScheme::rquant(8)), method);
    cfg.epochs = 2;
    cfg.batch_size = 128;
    cfg.augment = AugmentConfig::none();
    cfg.warmup_loss = 100.0;
    cfg.rerr_probe = Some(RErrProbe::new(0.01, 2));
    cfg.data_parallel = Some(dp);
    let report = train(&mut model, &train_ds, &test_ds, &cfg);
    (report, model)
}

fn fp_result(out: &mut String, r: &EvalResult) {
    write!(out, "{:08x}:{:08x};", r.error.to_bits(), r.confidence.to_bits()).unwrap();
}

fn fp_results(results: &[EvalResult]) -> String {
    let mut out = String::new();
    for r in results {
        fp_result(&mut out, r);
    }
    out
}

fn fp_report(report: &TrainReport) -> String {
    let mut out = String::new();
    write!(out, "{:08x}:{:08x};", report.final_loss.to_bits(), report.clean_error.to_bits())
        .unwrap();
    for loss in &report.epoch_losses {
        write!(out, "{:08x};", loss.to_bits()).unwrap();
    }
    for rerr in &report.epoch_rerr {
        write!(out, "{:08x}:", rerr.mean_error.to_bits()).unwrap();
        for e in &rerr.errors {
            write!(out, "{:08x},", e.to_bits()).unwrap();
        }
        out.push(';');
    }
    out
}

// ---------------------------------------------------------------------------
// (a) clean evaluate: parallel vs serial
// ---------------------------------------------------------------------------

#[test]
fn clean_evaluate_parallel_matches_serial() {
    let (model, test) = tiny_setup();
    // Batch sizes that divide the dataset, don't divide it, and exceed it.
    for batch_size in [1, 7, EVAL_BATCH, 999, 1000, 4096] {
        let parallel = evaluate(&model, &test, batch_size, Mode::Eval);
        let serial = evaluate_serial(&model, &test, batch_size, Mode::Eval);
        assert_eq!(parallel, serial, "batch_size {batch_size}");
    }
}

// ---------------------------------------------------------------------------
// (b) streaming vs batch campaign
// ---------------------------------------------------------------------------

#[test]
fn streaming_campaign_matches_batch() {
    let (model, test) = tiny_setup();
    let images = chip_images(&model, 6, 0.02);
    let batch = Campaign::new(&model, &test).run(&images);

    let mut streamed_cells = Vec::new();
    let streamed =
        Campaign::new(&model, &test).on_cell(|i, r| streamed_cells.push((i, *r))).run(&images);
    assert_eq!(batch, streamed, "streaming must not change results");
    let in_order: Vec<(usize, EvalResult)> = batch.iter().copied().enumerate().collect();
    assert_eq!(streamed_cells, in_order, "cells must stream exactly once, in order");
}

#[test]
fn streaming_grid_matches_batch_grid() {
    let (model, test) = tiny_setup();
    let grid = CampaignGrid {
        schemes: vec![QuantScheme::rquant(8), QuantScheme::rquant(4)],
        rates: vec![0.001, 0.01],
        n_chips: 3,
        chip_seed_base: 1000,
    };
    let batch = run_grid(&model, &grid, &test, EVAL_BATCH, Mode::Eval);
    let mut cells = 0usize;
    let streamed =
        run_grid_streaming(&model, &grid, &test, EVAL_BATCH, Mode::Eval, |_, _| cells += 1);
    assert_eq!(batch, streamed);
    assert_eq!(cells, grid.n_cells());
}

// ---------------------------------------------------------------------------
// (c) adaptive vs fixed work-item sizing
// ---------------------------------------------------------------------------

#[test]
fn adaptive_and_per_batch_sizing_match_serial() {
    let (model, test) = tiny_setup();
    let images = chip_images(&model, 6, 0.02);
    let serial = Campaign::new(&model, &test).serial().run(&images);
    for sizing in [ItemSizing::PerBatch, ItemSizing::Adaptive] {
        let sized = Campaign::new(&model, &test).sizing(sizing).run(&images);
        assert_eq!(sized, serial, "{sizing:?} must be bit-identical to the serial reference");
    }
}

// ---------------------------------------------------------------------------
// (c1) replica strategies: shared-image vs per-pattern vs serial
// ---------------------------------------------------------------------------

#[test]
fn replica_strategies_match_serial_under_both_sizings() {
    let (model, test) = tiny_setup();
    let images = chip_images(&model, 6, 0.02);
    let serial = Campaign::new(&model, &test).serial().run(&images);
    for strategy in [ReplicaStrategy::SharedImage, ReplicaStrategy::PerPattern] {
        for sizing in [ItemSizing::PerBatch, ItemSizing::Adaptive] {
            let run = Campaign::new(&model, &test).replicas(strategy).sizing(sizing).run(&images);
            assert_eq!(
                run, serial,
                "{strategy:?}/{sizing:?} must be bit-identical to the serial reference"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// (c2) profiled-chip axes: campaign vs serial reference, fixed iteration
// ---------------------------------------------------------------------------

/// The canonical two-model × two-axis (profiled + uniform) sweep plan the
/// thread-matrix and kill-resume tests pin — defined once in
/// [`common::run_sweep_fixture`] so both suites stay in lockstep. `None`
/// store = pure compute.
fn tiny_sweep(store: Option<&mut SweepStore>) -> Vec<EvalResult> {
    let (a, b, test) = common::sweep_fixture_models();
    common::run_sweep_fixture((&a, &b), &test, store, |_| {}).cells().to_vec()
}

/// A profiled-chip axis campaign must be byte-identical to the serial
/// reference over manually built images, and iterate rate-major then
/// offset-major — the order its cells are persisted and resumed under.
#[test]
fn profiled_axis_matches_serial_reference_and_iteration_order() {
    use bitrobust_biterror::{ChipKind, ProfiledAxis};
    let (model, test) = tiny_setup();
    let scheme = QuantScheme::rquant(8);
    let axis = ProfiledAxis::tab5(ChipKind::Chip1, 0, vec![0.01, 0.02], 3);

    // The manual Tab. 5-style loop: voltage per rate, offset per column.
    let chip = axis.synthesize();
    let voltages = axis.voltages(&chip);
    let q0 = QuantizedModel::quantize(&model, scheme);
    let images: Vec<QuantizedModel> = (0..axis.n_points())
        .map(|point| {
            let mut q = q0.clone();
            q.inject(&axis.injector(&chip, &voltages, point));
            q
        })
        .collect();
    let serial = Campaign::new(&model, &test).serial().run(&images);

    let mut seen = Vec::new();
    let campaign = run_axis_streaming(
        &model,
        &[scheme],
        &ChipAxis::Profiled(axis.clone()),
        &test,
        EVAL_BATCH,
        Mode::Eval,
        |cell, _| seen.push((cell.group, cell.point)),
    )
    .remove(0);

    assert_eq!(campaign.iter().map(|r| r.errors.len()).sum::<usize>(), axis.n_points());
    for (group, robust) in campaign.iter().enumerate() {
        for (offset, &error) in robust.errors.iter().enumerate() {
            let reference = serial[group * axis.n_offsets + offset];
            assert_eq!(error, reference.error, "cell ({group}, {offset})");
        }
    }
    let expected: Vec<(usize, usize)> =
        (0..axis.rates.len()).flat_map(|g| (0..axis.n_offsets).map(move |o| (g, o))).collect();
    assert_eq!(seen, expected, "profiled cells must stream rate-major, in order");

    // And the batch entry point agrees with the streaming one.
    let batch =
        run_axis(&model, &[scheme], &ChipAxis::Profiled(axis), &test, EVAL_BATCH, Mode::Eval)
            .remove(0);
    assert_eq!(batch, campaign);
}

// ---------------------------------------------------------------------------
// (d) in-training RErr probes: parallel vs serial
// ---------------------------------------------------------------------------

#[test]
fn in_training_probes_parallel_matches_serial() {
    let parallel = probed_training_report(false);
    let serial = probed_training_report(true);
    assert_eq!(parallel, serial, "the probe engine must not affect any reported number");
    assert_eq!(parallel.epoch_rerr.len(), 2);
}

// ---------------------------------------------------------------------------
// (e) data-parallel training: parallel vs serial shard execution
// ---------------------------------------------------------------------------

#[test]
fn data_parallel_training_matches_serial_reference() {
    for method in dp_methods() {
        let (parallel_report, parallel_model) =
            dp_training_run(method, DataParallel { shards: 3, serial: false });
        let (serial_report, serial_model) =
            dp_training_run(method, DataParallel { shards: 3, serial: true });
        assert_eq!(
            parallel_report, serial_report,
            "{method:?}: sharded training must not depend on how shards are scheduled"
        );
        assert_eq!(
            parallel_model.param_tensors(),
            serial_model.param_tensors(),
            "{method:?}: final weights must be byte-identical"
        );
    }
}

/// The shard *count* is part of the numerical contract: different counts
/// split float sums differently and legitimately produce different (still
/// deterministic) trajectories. Guard against an implementation that
/// secretly ignores the configured count. Float (unquantized) training is
/// used because quantized training snaps last-ulp weight differences back
/// onto the 8-bit grid, which can mask the split in the observable report.
#[test]
fn shard_count_is_a_numerical_contract() {
    let run = |shards: usize| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let built = build(ArchKind::Mlp, [1, 14, 14], 10, NormKind::Group, &mut rng);
        let mut model = built.model;
        let (train_ds, test_ds) = mnist_subset();
        let mut cfg = TrainConfig::new(None, TrainMethod::Clipping { wmax: 0.1 });
        cfg.epochs = 2;
        cfg.batch_size = 128;
        cfg.augment = AugmentConfig::none();
        cfg.data_parallel = Some(DataParallel::new(shards));
        let report = train(&mut model, &train_ds, &test_ds, &cfg);
        (report, model.param_tensors())
    };
    let (two, two_weights) = run(2);
    let (two_again, two_weights_again) = run(2);
    let (four, four_weights) = run(4);
    assert_eq!(two, two_again, "same shard count must reproduce exactly");
    assert_eq!(two_weights, two_weights_again);
    assert_ne!(
        (two.epoch_losses, two_weights),
        (four.epoch_losses, four_weights),
        "different shard counts should not be silently collapsed"
    );
}

// ---------------------------------------------------------------------------
// Thread-count matrix: 1, 2, and max threads must agree byte-for-byte.
// ---------------------------------------------------------------------------

/// Hidden helper: computes every case's canonical fingerprint at this
/// process's thread count (after asserting parallel == serial in-process)
/// and prints them as `FP <case> <hex>` lines for [`thread_matrix`].
#[test]
#[ignore = "subprocess worker for thread_matrix; run via BITROBUST_THREADS matrix"]
fn worker_fingerprints() {
    let (model, test) = tiny_setup();

    // (a) clean evaluate.
    let mut clean = String::new();
    for batch_size in [7, EVAL_BATCH, 1000] {
        let parallel = evaluate(&model, &test, batch_size, Mode::Eval);
        assert_eq!(parallel, evaluate_serial(&model, &test, batch_size, Mode::Eval));
        fp_result(&mut clean, &parallel);
    }
    println!("FP clean_evaluate {clean}");

    // (b)+(c) campaign: serial reference vs streaming and both sizings.
    let images = chip_images(&model, 6, 0.02);
    let serial = Campaign::new(&model, &test).serial().run(&images);
    let streamed = Campaign::new(&model, &test).on_cell(|_, _| {}).run(&images);
    assert_eq!(serial, streamed);
    for sizing in [ItemSizing::PerBatch, ItemSizing::Adaptive] {
        let sized = Campaign::new(&model, &test).sizing(sizing).run(&images);
        assert_eq!(serial, sized, "{sizing:?}");
    }
    println!("FP campaign {}", fp_results(&serial));

    // (c1) replica strategies + the native integer-domain forward pass:
    // a shared-image campaign must match the serial bytes at every thread
    // count, and `QuantizedModel::infer` is single-threaded by
    // construction, so its logits must fingerprint identically across the
    // matrix too.
    let shared = Campaign::new(&model, &test).replicas(ReplicaStrategy::SharedImage).run(&images);
    assert_eq!(serial, shared, "shared-image campaign must match the serial reference");
    let (x, _) = test.batch_range(0, 64);
    let logits = images[0].infer(&model, &x).expect("the MLP must lower to a QNet");
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for v in logits.data() {
        for b in v.to_bits().to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    println!("FP native_infer {hash:016x}");

    // (d) in-training probes.
    let report = probed_training_report(false);
    assert_eq!(report, probed_training_report(true));
    println!("FP probed_training {}", fp_report(&report));

    // (e) data-parallel training: report + final weights, after asserting
    // parallel == serial shard execution in-process.
    let mut dp_fp = String::new();
    for method in dp_methods() {
        let (parallel_report, parallel_model) =
            dp_training_run(method, DataParallel { shards: 3, serial: false });
        let (serial_report, serial_model) =
            dp_training_run(method, DataParallel { shards: 3, serial: true });
        assert_eq!(parallel_report, serial_report, "{method:?}");
        assert_eq!(parallel_model.param_tensors(), serial_model.param_tensors(), "{method:?}");
        write!(
            dp_fp,
            "{}w{:016x}|",
            fp_report(&parallel_report),
            weights_fingerprint(&parallel_model)
        )
        .unwrap();
    }
    println!("FP dp_training {dp_fp}");

    // (f) the durable sweep orchestrator: a 2-model (profiled + uniform
    // axis) sweep's store must fingerprint identically whether run in one
    // shot or interrupted and resumed — at every thread count.
    let dir = std::env::temp_dir();
    let single_path = dir.join(format!("bitrobust-det-sweep-single-{}.jsonl", std::process::id()));
    let resumed_path =
        dir.join(format!("bitrobust-det-sweep-resumed-{}.jsonl", std::process::id()));
    for path in [&single_path, &resumed_path] {
        let _ = std::fs::remove_file(path);
    }

    let mut single_store = SweepStore::open(&single_path).expect("open single-shot store");
    let single_cells = tiny_sweep(Some(&mut single_store));

    // Simulate an interrupted run: seed the resumed store with the first
    // half of the single-shot store's lines (a killed writer's file is
    // exactly a prefix of complete lines), then resume.
    let text = std::fs::read_to_string(&single_path).expect("read single-shot store");
    let lines: Vec<&str> = text.lines().collect();
    let half: String = lines[..lines.len() / 2].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&resumed_path, half).expect("seed interrupted store");
    let mut resumed_store = SweepStore::open(&resumed_path).expect("open interrupted store");
    assert_eq!(resumed_store.len(), lines.len() / 2);
    let resumed_cells = tiny_sweep(Some(&mut resumed_store));

    assert_eq!(resumed_cells, single_cells, "resumed results must be byte-identical");
    assert_eq!(
        resumed_store.fingerprint(),
        single_store.fingerprint(),
        "resumed store must fingerprint identically to the single-shot store"
    );
    println!("FP sweep_store {:016x}:{}", single_store.fingerprint(), fp_results(&single_cells));
    for path in [&single_path, &resumed_path] {
        let _ = std::fs::remove_file(path);
    }
}

/// Extracts the `FP <case> <hex>` lines from a worker run's stdout. With
/// `--nocapture` the libtest harness prints `test ... ` on the same line
/// as the worker's first fingerprint, so match anywhere in the line.
fn fingerprint_lines(stdout: &str) -> Vec<String> {
    let lines: Vec<String> =
        stdout.lines().filter_map(|l| l.find("FP ").map(|at| l[at..].to_string())).collect();
    assert_eq!(lines.len(), 6, "worker must print one fingerprint per case:\n{stdout}");
    lines
}

#[test]
fn thread_matrix_results_identical_at_1_2_and_max_threads() {
    let exe = std::env::current_exe().expect("test binary path");
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The matrix: 1, 2, and max threads with observability off, plus one
    // run with full tracing enabled — obs reads clocks but must never
    // change a byte of any result.
    let cases = [
        ("1".to_string(), "off"),
        ("2".to_string(), "off"),
        (max.to_string(), "off"),
        ("2".to_string(), "trace"),
    ];

    let mut runs = Vec::new();
    for (threads, obs) in &cases {
        let output = std::process::Command::new(&exe)
            .args(["worker_fingerprints", "--exact", "--ignored", "--nocapture"])
            .env("BITROBUST_THREADS", threads)
            .env("BITROBUST_OBS", obs)
            .output()
            .expect("spawn worker");
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        assert!(
            output.status.success(),
            "worker failed at BITROBUST_THREADS={threads} BITROBUST_OBS={obs}:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        runs.push((format!("threads={threads} obs={obs}"), fingerprint_lines(&stdout)));
    }

    let (_, reference) = &runs[0];
    for (case, lines) in &runs[1..] {
        assert_eq!(
            lines, reference,
            "results at {case} differ from the 1-thread obs-off reference"
        );
    }
}
