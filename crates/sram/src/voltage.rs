//! Voltage → bit-error-rate model.
//!
//! Measurements on 14 nm SRAM arrays (Chandramoorthy et al., 2019; Fig. 1 of
//! the reproduced paper) show the bit cell failure probability rising
//! *exponentially* as the supply voltage drops below `Vmin`, the lowest
//! voltage with error-free operation. We model
//!
//! ```text
//! p(v) = p_low · 10^(−β · (v − v_low))        v normalized by Vmin
//! ```
//!
//! calibrated so that `p(0.75) = 20%` and `p(1.0) ≈ 1e-6` (error-free at
//! `Vmin` within measurement resolution), matching the published curve's
//! end points and its straight-line shape on a log axis.

/// Exponential voltage-to-bit-error-rate model (voltages normalized by
/// `Vmin`).
///
/// # Examples
///
/// ```
/// use bitrobust_sram::VoltageErrorModel;
///
/// let model = VoltageErrorModel::chandramoorthy14nm();
/// let p = model.rate_at(0.85);
/// assert!(p > 1e-4 && p < 0.05);
/// let v = model.voltage_for_rate(0.01);
/// assert!((model.rate_at(v) - 0.01).abs() / 0.01 < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageErrorModel {
    v_low: f64,
    p_low: f64,
    beta: f64,
}

impl VoltageErrorModel {
    /// Creates a model from a low-voltage anchor point and decay slope.
    ///
    /// `p_low` is the bit error rate at normalized voltage `v_low`; `beta`
    /// is the base-10 decades of error-rate reduction per unit voltage.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p_low <= 1`, `v_low > 0`, and `beta > 0`.
    pub fn new(v_low: f64, p_low: f64, beta: f64) -> Self {
        assert!(p_low > 0.0 && p_low <= 1.0, "p_low must be in (0, 1]");
        assert!(v_low > 0.0, "v_low must be positive");
        assert!(beta > 0.0, "beta must be positive");
        Self { v_low, p_low, beta }
    }

    /// Calibration matching Fig. 1 of the paper (32 × 4 KB arrays, 14 nm):
    /// 20% bit error rate at `0.75·Vmin`, error-free (≈1e-6) at `Vmin`.
    pub fn chandramoorthy14nm() -> Self {
        let v_low = 0.75;
        let p_low = 0.20;
        let p_min: f64 = 1e-6;
        let beta = (p_low / p_min).log10() / (1.0 - v_low);
        Self::new(v_low, p_low, beta)
    }

    /// Bit error probability at normalized voltage `v`.
    ///
    /// The exponential extends in both directions (clamped to `[0, 1]`), so
    /// voltages above `Vmin` quickly give negligible rates and voltages far
    /// below `v_low` saturate toward 1.
    pub fn rate_at(&self, v: f64) -> f64 {
        (self.p_low * 10f64.powf(-self.beta * (v - self.v_low))).clamp(0.0, 1.0)
    }

    /// The normalized voltage at which the bit error rate equals `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn voltage_for_rate(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "rate must be in (0, 1]");
        self.v_low - (p / self.p_low).log10() / self.beta
    }

    /// Samples a per-cell failure-voltage threshold: the cell is faulty at
    /// any operating voltage `v <= vth`. Sampling through the inverse
    /// survival function guarantees that an array of such cells reproduces
    /// `rate_at(v)` in expectation **and** that the faulty set at a higher
    /// voltage is a subset of the faulty set at any lower voltage — the
    /// paper's "inherited errors" property (Sec. 3).
    pub fn sample_threshold(&self, u: f64) -> f64 {
        let u = u.clamp(f64::MIN_POSITIVE, 1.0);
        self.v_low - (u / self.p_low).log10() / self.beta
    }

    /// Anchor voltage of the calibration (normalized by `Vmin`).
    pub fn v_low(&self) -> f64 {
        self.v_low
    }

    /// Bit error rate at the anchor voltage.
    pub fn p_low(&self) -> f64 {
        self.p_low
    }

    /// Decades of error-rate decay per unit normalized voltage.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Default for VoltageErrorModel {
    fn default() -> Self {
        Self::chandramoorthy14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_monotonically_decreasing_in_voltage() {
        let m = VoltageErrorModel::chandramoorthy14nm();
        let mut last = f64::INFINITY;
        for i in 0..60 {
            let v = 0.70 + i as f64 * 0.006;
            let p = m.rate_at(v);
            assert!(p <= last, "rate must fall as voltage rises");
            last = p;
        }
    }

    #[test]
    fn calibration_end_points() {
        let m = VoltageErrorModel::chandramoorthy14nm();
        assert!((m.rate_at(0.75) - 0.20).abs() < 1e-9);
        assert!(m.rate_at(1.0) <= 1.1e-6);
    }

    #[test]
    fn voltage_for_rate_inverts_rate_at() {
        let m = VoltageErrorModel::chandramoorthy14nm();
        for &p in &[0.15, 0.01, 1e-3, 1e-4] {
            let v = m.voltage_for_rate(p);
            assert!((m.rate_at(v) - p).abs() / p < 1e-6);
        }
    }

    #[test]
    fn one_percent_rate_sits_near_081_vmin() {
        // The headline calibration: robustness to p = 1% buys ~30% energy,
        // i.e. an operating point near 0.8 Vmin.
        let m = VoltageErrorModel::chandramoorthy14nm();
        let v = m.voltage_for_rate(0.01);
        assert!((0.78..=0.84).contains(&v), "v = {v}");
    }

    #[test]
    fn thresholds_reproduce_rate_in_expectation() {
        let m = VoltageErrorModel::chandramoorthy14nm();
        // Deterministic low-discrepancy u values.
        let n = 200_000;
        let mut faulty = 0u32;
        let v = 0.85;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            if m.sample_threshold(u) >= v {
                faulty += 1;
            }
        }
        let measured = faulty as f64 / n as f64;
        let expected = m.rate_at(v);
        assert!((measured - expected).abs() / expected < 0.05, "{measured} vs {expected}");
    }

    #[test]
    fn subset_property_of_thresholds() {
        // A cell faulty at v1 (vth >= v1) is also faulty at any v2 < v1.
        let m = VoltageErrorModel::chandramoorthy14nm();
        let vth = m.sample_threshold(0.37);
        let (v_high, v_low) = (0.9, 0.8);
        if vth >= v_high {
            assert!(vth >= v_low);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn voltage_for_rate_rejects_zero() {
        let _ = VoltageErrorModel::chandramoorthy14nm().voltage_for_rate(0.0);
    }
}
