//! A tiny self-describing binary format for named tensor collections.
//!
//! Used to persist trained models in the experiment zoo and for the
//! save/load round-trip tests. The format is little-endian:
//!
//! ```text
//! magic  "BRTS"          4 bytes
//! version u32            currently 1
//! count   u32            number of entries
//! entry*: name_len u32, name bytes (utf-8),
//!         ndim u32, dims u32*, data f32*
//! ```

use std::io::{self, Read, Write};

use crate::Tensor;

const MAGIC: &[u8; 4] = b"BRTS";
const VERSION: u32 = 1;

/// Writes named tensors to `w` in the `BRTS` format.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_tensors<W: Write>(mut w: W, entries: &[(String, Tensor)]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, entries.len() as u32)?;
    for (name, tensor) in entries {
        let bytes = name.as_bytes();
        write_u32(&mut w, bytes.len() as u32)?;
        w.write_all(bytes)?;
        write_u32(&mut w, tensor.ndim() as u32)?;
        for &d in tensor.shape() {
            write_u32(&mut w, d as u32)?;
        }
        for &v in tensor.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads named tensors from `r` in the `BRTS` format.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic, unsupported version, invalid
/// UTF-8 names, or truncated payloads.
pub fn read_tensors<R: Read>(mut r: R) -> io::Result<Vec<(String, Tensor)>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a BRTS tensor file"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported BRTS version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "tensor name is not utf-8"))?;
        let ndim = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u32(&mut r)? as usize);
        }
        let numel: usize = shape.iter().product();
        let mut data = vec![0f32; numel];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        entries.push((name, Tensor::from_vec(shape, data)));
    }
    Ok(entries)
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_names_shapes_values() {
        let entries = vec![
            ("conv1.weight".to_string(), Tensor::from_fn(&[4, 3, 3, 3], |i| i as f32 * 0.5)),
            ("conv1.bias".to_string(), Tensor::from_vec(vec![4], vec![-1.0, 0.0, 1.0, 2.0])),
            ("empty".to_string(), Tensor::zeros(&[0])),
        ];
        let mut buf = Vec::new();
        write_tensors(&mut buf, &entries).unwrap();
        let back = read_tensors(&buf[..]).unwrap();
        assert_eq!(back.len(), 3);
        for ((n0, t0), (n1, t1)) in entries.iter().zip(&back) {
            assert_eq!(n0, n1);
            assert_eq!(t0, t1);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_tensors(&b"NOPE\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_payload() {
        let entries = vec![("w".to_string(), Tensor::from_vec(vec![4], vec![1.0; 4]))];
        let mut buf = Vec::new();
        write_tensors(&mut buf, &entries).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_tensors(&buf[..]).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_tensors(&buf[..]).is_err());
    }
}
