//! **Tab. 4 / Tab. 12** — Random bit error training (`RANDBET`).
//!
//! RErr of `RQUANT`, `CLIPPING 0.1`, and `RANDBET 0.1 (p=1%)` at `m = 8`
//! and `m = 4` bits, for `p ∈ {0.5%, 1%, 1.5%}`, plus the symmetric
//! quantization ablation (Tab. 12).
//!
//! All seven models run as **one** durable sweep campaign
//! ([`bitrobust_core::run_sweep`]): the zoo is warmed once, every
//! (model, rate, chip) cell fans out together, and completed cells land in
//! `target/sweeps/tab4.jsonl` — interrupt and rerun to resume
//! (`--fresh` recomputes).

use bitrobust_core::{run_sweep, RandBetVariant, SweepAxis, SweepOptions, TrainMethod};
use bitrobust_experiments::zoo::ZooSpec;
use bitrobust_experiments::{
    open_sweep_store, pct, pct_pm, protocol_axis, sweep_models, sweep_progress, warm_zoo,
    DatasetKind, ExpOptions, Table,
};
use bitrobust_quant::QuantScheme;

fn main() {
    let opts = ExpOptions::from_args();
    let (_, test_ds) = bitrobust_experiments::dataset_pair(DatasetKind::Cifar10, opts.seed);
    let ps = [5e-3, 1e-2, 1.5e-2];

    let runs: Vec<(&str, QuantScheme, TrainMethod)> = vec![
        ("8bit RQUANT", QuantScheme::rquant(8), TrainMethod::Normal),
        ("8bit CLIPPING 0.1", QuantScheme::rquant(8), TrainMethod::Clipping { wmax: 0.1 }),
        (
            "8bit RANDBET 0.1 p=1%",
            QuantScheme::rquant(8),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
        ("4bit CLIPPING 0.1", QuantScheme::rquant(4), TrainMethod::Clipping { wmax: 0.1 }),
        (
            "4bit RANDBET 0.1 p=1%",
            QuantScheme::rquant(4),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
        // Tab. 12: symmetric quantization instead of RQuant.
        ("8bit sym CLIPPING 0.1", QuantScheme::symmetric(8), TrainMethod::Clipping { wmax: 0.1 }),
        (
            "8bit sym RANDBET 0.1 p=1%",
            QuantScheme::symmetric(8),
            TrainMethod::RandBet { wmax: Some(0.1), p: 0.01, variant: RandBetVariant::Standard },
        ),
    ];

    let specs: Vec<ZooSpec> = runs
        .iter()
        .map(|(_, scheme, method)| {
            let mut spec = ZooSpec::new(DatasetKind::Cifar10, Some(*scheme), *method);
            spec.epochs = opts.epochs(spec.epochs);
            spec.seed = opts.seed;
            spec
        })
        .collect();
    eprintln!("warming {} cifar10 zoo models...", specs.len());
    let warmed = warm_zoo(&specs, opts.seed, opts.no_cache);

    let models = sweep_models(&specs, &warmed);
    let axes = vec![SweepAxis::new("uniform", protocol_axis(&ps, opts.chips))];
    let total = models.len() * axes[0].axis.n_points();
    let mut store = open_sweep_store("tab4", &opts);
    eprint!("sweep {} models x {} cells: ", models.len(), axes[0].axis.n_points());
    let results = run_sweep(
        &models,
        &axes,
        &test_ds,
        &SweepOptions::default(),
        Some(&mut store),
        sweep_progress(total),
    );

    let mut header = vec!["model".to_string(), "Err %".to_string()];
    header.extend(ps.iter().map(|p| format!("RErr p={:.1}%", 100.0 * p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (mi, (name, _, _)) in runs.iter().enumerate() {
        let sweep = results.robust(mi, 0);
        let mut row = vec![name.to_string(), pct(warmed[mi].1.clean_error as f64)];
        row.extend(sweep.iter().map(|r| pct_pm(r.mean_error as f64, r.std_error as f64)));
        table.row_owned(row);
    }
    println!("Tab. 4 / Tab. 12 (CIFAR10 stand-in):\n{}", table.render());
    println!("Expected shape (paper): RANDBET < CLIPPING < RQUANT in RErr at p >= 0.5%,");
    println!("more pronounced at 4 bit; symmetric quantization is slightly worse than RQuant.");
    bitrobust_experiments::finish_obs();
}
