//! Per-cell SRAM array simulation.
//!
//! Process variation makes each bit cell fail at a different supply voltage.
//! We model a cell by a *failure-voltage threshold* `vth` (the cell is
//! faulty at any operating voltage `v <= vth`) plus a *stuck value* (what a
//! faulty cell reads back). Thresholds are drawn through the inverse
//! survival function of the [`VoltageErrorModel`], which reproduces the
//! measured exponential rate curve in expectation and gives the paper's
//! "inherited errors" property for free: the faulty set at a higher voltage
//! is always a subset of the faulty set at a lower one.

use rand::Rng;

use crate::VoltageErrorModel;

/// Spatial/behavioural structure of a chip's faults, beyond the i.i.d.
/// baseline.
///
/// Chip 2 of the paper (Fig. 3 right, Fig. 8) shows bit errors strongly
/// aligned along memory columns and biased toward 0-to-1 flips; this profile
/// reproduces those behaviours for synthesized chips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellProfile {
    /// Fraction of columns that are "weak" (fail at elevated voltages).
    pub weak_column_frac: f64,
    /// Threshold boost (in normalized volts) applied to cells in weak
    /// columns. Zero yields an i.i.d. array.
    pub column_boost: f64,
    /// Probability that a faulty cell is stuck at 1 (reads 1 regardless of
    /// the stored value, i.e. produces 0-to-1 flips). 0.5 = unbiased.
    pub stuck_one_bias: f64,
    /// Fraction of faulty cells whose failure is persistent across accesses;
    /// the rest are transient (fail on ~half of the accesses).
    pub persistent_frac: f64,
}

impl CellProfile {
    /// An i.i.d., unbiased profile (the paper's chip 1 is close to this).
    pub fn uniform() -> Self {
        Self {
            weak_column_frac: 0.0,
            column_boost: 0.0,
            stuck_one_bias: 0.5,
            persistent_frac: 0.45,
        }
    }

    /// A column-aligned, 0-to-1-biased profile in the spirit of the paper's
    /// chip 2: a few weak columns whose cells fail at markedly elevated
    /// voltages, producing the vertical stripes of Fig. 3 (right).
    pub fn column_aligned() -> Self {
        Self {
            weak_column_frac: 0.08,
            column_boost: 0.08,
            stuck_one_bias: 0.75,
            persistent_frac: 0.6,
        }
    }

    /// Validates field ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions or negative boost.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.weak_column_frac), "weak_column_frac in [0,1]");
        assert!(self.column_boost >= 0.0, "column_boost must be non-negative");
        assert!((0.0..=1.0).contains(&self.stuck_one_bias), "stuck_one_bias in [0,1]");
        assert!((0.0..=1.0).contains(&self.persistent_frac), "persistent_frac in [0,1]");
    }
}

impl Default for CellProfile {
    fn default() -> Self {
        Self::uniform()
    }
}

/// A simulated SRAM array of `rows × cols` bit cells.
///
/// # Examples
///
/// ```
/// use bitrobust_sram::{CellProfile, SramArray, VoltageErrorModel};
/// use rand::SeedableRng;
///
/// let model = VoltageErrorModel::chandramoorthy14nm();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let array = SramArray::sample(512, 64, &model, &CellProfile::uniform(), &mut rng);
/// let p = array.bit_error_rate_at(0.8);
/// assert!(p > 0.005 && p < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct SramArray {
    rows: usize,
    cols: usize,
    vth: Vec<f32>,
    stuck: Vec<bool>,
    persistent: Vec<bool>,
}

impl SramArray {
    /// Samples an array from the voltage model and cell profile.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols == 0` or the profile is invalid.
    pub fn sample(
        rows: usize,
        cols: usize,
        model: &VoltageErrorModel,
        profile: &CellProfile,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array must have cells");
        profile.validate();
        let n = rows * cols;
        // Weak columns share a per-column threshold boost, so their cells
        // fail together as voltage drops — the stripes of Fig. 3 (right).
        let col_boost: Vec<f64> = (0..cols)
            .map(|_| {
                if rng.gen::<f64>() < profile.weak_column_frac {
                    profile.column_boost * (0.3 + 0.7 * rng.gen::<f64>())
                } else {
                    0.0
                }
            })
            .collect();
        let mut vth = Vec::with_capacity(n);
        let mut stuck = Vec::with_capacity(n);
        let mut persistent = Vec::with_capacity(n);
        for i in 0..n {
            let col = i % cols;
            let t = model.sample_threshold(rng.gen::<f64>()) + col_boost[col];
            vth.push(t as f32);
            stuck.push(rng.gen::<f64>() < profile.stuck_one_bias);
            persistent.push(rng.gen::<f64>() < profile.persistent_frac);
        }
        Self { rows, cols, vth, stuck, persistent }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of bit cells.
    pub fn n_cells(&self) -> usize {
        self.vth.len()
    }

    /// Whether cell `i` (row-major) is faulty at normalized voltage `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_faulty_at(&self, i: usize, v: f64) -> bool {
        self.vth[i] as f64 >= v
    }

    /// The value a faulty cell reads back (`true` = 1).
    pub fn stuck_value(&self, i: usize) -> bool {
        self.stuck[i]
    }

    /// Whether cell `i`'s failure is persistent across accesses.
    pub fn is_persistent(&self, i: usize) -> bool {
        self.persistent[i]
    }

    /// Number of faulty cells at voltage `v`.
    pub fn fault_count_at(&self, v: f64) -> usize {
        self.vth.iter().filter(|&&t| t as f64 >= v).count()
    }

    /// Measured bit error rate at voltage `v` (faulty cells / total cells,
    /// the definition used for the paper's profiling in App. A).
    pub fn bit_error_rate_at(&self, v: f64) -> f64 {
        self.fault_count_at(v) as f64 / self.n_cells() as f64
    }

    /// Per-kind fault statistics at voltage `v` (the App. C.1 table).
    pub fn stats_at(&self, v: f64) -> FaultStats {
        let mut p01 = 0usize; // stuck at 1: flips stored 0 -> 1
        let mut p10 = 0usize;
        let mut persistent = 0usize;
        for i in 0..self.n_cells() {
            if self.is_faulty_at(i, v) {
                if self.stuck[i] {
                    p01 += 1;
                } else {
                    p10 += 1;
                }
                if self.persistent[i] {
                    persistent += 1;
                }
            }
        }
        let n = self.n_cells() as f64;
        FaultStats {
            rate: (p01 + p10) as f64 / n,
            rate_0_to_1: p01 as f64 / n,
            rate_1_to_0: p10 as f64 / n,
            rate_persistent: persistent as f64 / n,
        }
    }
}

/// Fault statistics of an array at one voltage, mirroring the per-chip table
/// of the paper's App. C.1 (`p`, `p0t1`, `p1t0`, `psa`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultStats {
    /// Overall bit error rate.
    pub rate: f64,
    /// Rate of 0-to-1 flips (stuck-at-1 cells).
    pub rate_0_to_1: f64,
    /// Rate of 1-to-0 flips (stuck-at-0 cells).
    pub rate_1_to_0: f64,
    /// Rate of persistent errors.
    pub rate_persistent: f64,
}

/// Average measured bit error rate over several arrays at each voltage —
/// the blue curve of Fig. 1.
pub fn characterize(arrays: &[SramArray], voltages: &[f64]) -> Vec<(f64, f64)> {
    voltages
        .iter()
        .map(|&v| {
            let total: usize = arrays.iter().map(|a| a.fault_count_at(v)).sum();
            let cells: usize = arrays.iter().map(|a| a.n_cells()).sum();
            (v, total as f64 / cells.max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn test_array(seed: u64, profile: CellProfile) -> SramArray {
        let model = VoltageErrorModel::chandramoorthy14nm();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SramArray::sample(256, 64, &model, &profile, &mut rng)
    }

    #[test]
    fn measured_rate_tracks_model() {
        let model = VoltageErrorModel::chandramoorthy14nm();
        let a = test_array(1, CellProfile::uniform());
        for &v in &[0.78, 0.82, 0.86] {
            let measured = a.bit_error_rate_at(v);
            let expected = model.rate_at(v);
            assert!(
                (measured - expected).abs() < expected * 0.5 + 2e-4,
                "v={v}: {measured} vs {expected}"
            );
        }
    }

    #[test]
    fn faults_inherit_across_voltages() {
        let a = test_array(2, CellProfile::uniform());
        for i in 0..a.n_cells() {
            if a.is_faulty_at(i, 0.88) {
                assert!(a.is_faulty_at(i, 0.80), "fault at high voltage must persist at low");
            }
        }
    }

    #[test]
    fn column_profile_concentrates_faults() {
        // At a voltage where the baseline rate is small, the weak columns of
        // a column-aligned chip should hold a far larger share of the faults
        // than any columns of a uniform chip.
        fn top5_share(a: &SramArray, v: f64) -> f64 {
            let mut per_col = vec![0usize; a.cols()];
            for i in 0..a.n_cells() {
                if a.is_faulty_at(i, v) {
                    per_col[i % a.cols()] += 1;
                }
            }
            per_col.sort_unstable_by(|x, y| y.cmp(x));
            let total: usize = per_col.iter().sum();
            if total == 0 {
                return 0.0;
            }
            per_col[..5].iter().sum::<usize>() as f64 / total as f64
        }
        let model = VoltageErrorModel::chandramoorthy14nm();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let aligned = SramArray::sample(1024, 64, &model, &CellProfile::column_aligned(), &mut rng);
        let uniform = SramArray::sample(1024, 64, &model, &CellProfile::uniform(), &mut rng);
        let v = 0.80;
        let aligned_share = top5_share(&aligned, v);
        let uniform_share = top5_share(&uniform, v);
        assert!(
            aligned_share > 2.0 * uniform_share,
            "aligned {aligned_share} vs uniform {uniform_share}"
        );
        assert!(aligned_share > 0.3, "top-5 columns should dominate, got {aligned_share}");
    }

    #[test]
    fn stuck_bias_skews_flip_direction() {
        let a = test_array(4, CellProfile::column_aligned());
        let stats = a.stats_at(0.78);
        assert!(stats.rate_0_to_1 > stats.rate_1_to_0, "profile is 0-to-1 biased");
        assert!((stats.rate_0_to_1 + stats.rate_1_to_0 - stats.rate).abs() < 1e-12);
    }

    #[test]
    fn characterize_averages_over_arrays() {
        let arrays: Vec<SramArray> =
            (0..4).map(|s| test_array(s, CellProfile::uniform())).collect();
        let curve = characterize(&arrays, &[0.8, 0.85, 0.9]);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1 > curve[1].1 && curve[1].1 > curve[2].1);
    }

    #[test]
    fn stats_rates_are_consistent() {
        let a = test_array(5, CellProfile::uniform());
        let s = a.stats_at(0.8);
        assert!(s.rate_persistent <= s.rate);
        assert!(s.rate <= 1.0);
    }
}
